//! Worker clusters and VM provisioning.

use crate::machine::Machine;
use crate::region::Region;
use crate::sku::VmSku;
use tuna_stats::rng::{hash_combine, Rng};

/// A fixed-size cluster of worker machines plus a provisioning factory for
/// short-lived VMs and fresh deployment clusters.
///
/// The paper's evaluation uses a 10-worker tuning cluster and deploys best
/// configs onto a *new* set of 10 VMs; [`Cluster::fresh_cluster`] provides
/// the latter with decorrelated placements.
#[derive(Debug, Clone)]
pub struct Cluster {
    sku: VmSku,
    region: Region,
    root: Rng,
    machines: Vec<Machine>,
    next_id: u64,
}

impl Cluster {
    /// Creates a cluster of `n` machines.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, sku: VmSku, region: Region, seed: u64) -> Self {
        assert!(n > 0, "cluster needs at least one machine");
        let root = Rng::seed_from(hash_combine(seed, 0xC1C5_7E12));
        let machines = (0..n as u64)
            .map(|id| Machine::provision(id, &sku, &region, &root))
            .collect();
        Cluster {
            sku,
            region,
            root,
            machines,
            next_id: n as u64,
        }
    }

    /// Number of machines.
    pub fn size(&self) -> usize {
        self.machines.len()
    }

    /// Immutable machine access.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn machine(&self, i: usize) -> &Machine {
        &self.machines[i]
    }

    /// Mutable machine access (measurements mutate interference state).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn machine_mut(&mut self, i: usize) -> &mut Machine {
        &mut self.machines[i]
    }

    /// All machines, mutably.
    pub fn machines_mut(&mut self) -> &mut [Machine] {
        &mut self.machines
    }

    /// Hands out disjoint mutable lanes for `indices`, in the order given.
    ///
    /// This is the partitioning primitive behind parallel trial execution:
    /// each lane owns exactly one machine, so concurrent runs can mutate
    /// interference state without aliasing.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds or appears twice.
    pub fn lanes_mut(&mut self, indices: &[usize]) -> Vec<&mut Machine> {
        let n = self.machines.len();
        let mut slot_of = vec![usize::MAX; n];
        for (slot, &idx) in indices.iter().enumerate() {
            assert!(idx < n, "lane index {idx} out of bounds for cluster of {n}");
            assert!(
                slot_of[idx] == usize::MAX,
                "lane index {idx} requested twice"
            );
            slot_of[idx] = slot;
        }
        let mut lanes: Vec<Option<&mut Machine>> = indices.iter().map(|_| None).collect();
        for (idx, machine) in self.machines.iter_mut().enumerate() {
            let slot = slot_of[idx];
            if slot != usize::MAX {
                lanes[slot] = Some(machine);
            }
        }
        lanes
            .into_iter()
            .map(|l| l.expect("every requested lane is filled"))
            .collect()
    }

    /// All machines.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The SKU of this cluster.
    pub fn sku(&self) -> &VmSku {
        &self.sku
    }

    /// The region of this cluster.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// Provisions a fresh short-lived VM (new placement draw); the VM is
    /// *not* added to the cluster.
    pub fn provision_fresh(&mut self) -> Machine {
        let id = self.next_id;
        self.next_id += 1;
        Machine::provision(id, &self.sku, &self.region, &self.root)
    }

    /// Builds a new cluster of `n` machines with placements decorrelated
    /// from this one (the paper's "deploy on a new set of VMs" step).
    /// `label` distinguishes multiple deployment clusters.
    pub fn fresh_cluster(&self, n: usize, label: u64) -> Cluster {
        let root = self.root.fork(hash_combine(0xDEB1_0411, label));
        let machines = (0..n as u64)
            .map(|id| Machine::provision(1_000_000 + id, &self.sku, &self.region, &root))
            .collect();
        Cluster {
            sku: self.sku.clone(),
            region: self.region.clone(),
            root,
            machines,
            next_id: 1_000_000 + n as u64,
        }
    }

    /// Advances every machine by `steps` idle epochs.
    pub fn advance_all(&mut self, steps: usize) {
        for m in &mut self.machines {
            m.advance(steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 77)
    }

    #[test]
    fn deterministic_construction() {
        let a = cluster();
        let b = cluster();
        for i in 0..a.size() {
            assert_eq!(a.machine(i).placement(), b.machine(i).placement());
        }
    }

    #[test]
    fn machines_have_distinct_placements() {
        let c = cluster();
        for i in 0..c.size() {
            for j in (i + 1)..c.size() {
                assert_ne!(
                    c.machine(i).identity(),
                    c.machine(j).identity(),
                    "machines {i} and {j} collide"
                );
            }
        }
    }

    #[test]
    fn fresh_vms_get_new_ids_and_placements() {
        let mut c = cluster();
        let a = c.provision_fresh();
        let b = c.provision_fresh();
        assert_ne!(a.id(), b.id());
        assert_ne!(a.identity(), b.identity());
        assert!(c.machines().iter().all(|m| m.id() != a.id()));
    }

    #[test]
    fn fresh_cluster_decorrelated() {
        let c = cluster();
        let d1 = c.fresh_cluster(10, 0);
        let d2 = c.fresh_cluster(10, 1);
        assert_eq!(d1.size(), 10);
        assert_ne!(d1.machine(0).identity(), c.machine(0).identity());
        assert_ne!(d1.machine(0).identity(), d2.machine(0).identity());
    }

    #[test]
    fn lanes_mut_hands_out_requested_machines_in_order() {
        let mut c = cluster();
        let ids: Vec<_> = [7usize, 2, 5].iter().map(|&i| c.machine(i).id()).collect();
        let lanes = c.lanes_mut(&[7, 2, 5]);
        assert_eq!(lanes.len(), 3);
        for (lane, id) in lanes.iter().zip(&ids) {
            assert_eq!(lane.id(), *id);
        }
    }

    #[test]
    fn lanes_mut_lanes_are_independent() {
        let mut c = cluster();
        let before_1 = c.machine(1).epoch();
        {
            let mut lanes = c.lanes_mut(&[0, 3]);
            lanes[0].advance(4);
            lanes[1].advance(2);
        }
        assert_eq!(c.machine(0).epoch(), 4);
        assert_eq!(c.machine(3).epoch(), 2);
        assert_eq!(c.machine(1).epoch(), before_1);
    }

    #[test]
    #[should_panic(expected = "requested twice")]
    fn lanes_mut_rejects_duplicates() {
        cluster().lanes_mut(&[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn lanes_mut_rejects_out_of_range() {
        cluster().lanes_mut(&[10]);
    }

    #[test]
    fn advance_all_moves_epochs() {
        let mut c = cluster();
        c.advance_all(7);
        assert!(c.machines().iter().all(|m| m.epoch() == 7));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_size_panics() {
        Cluster::new(0, VmSku::d8s_v5(), Region::westus2(), 1);
    }
}
