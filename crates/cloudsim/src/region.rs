//! Cloud regions with distinct variability characteristics.
//!
//! §6.2 repeats the evaluation in `centralus` and observes "fewer
//! high-performing machines" — a placement distribution with a heavier low
//! tail. We model a region as a multiplier on the SKU's noise channels plus
//! a *crowded-host subpopulation*: with probability `crowded_prob` a VM
//! lands on a crowded host and loses `crowded_penalty` of its memory /
//! cache / OS performance (plus a small CPU/disk tax).

/// A cloud region (or the bare-metal "region" for CloudLab).
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name, e.g. `"westus2"`.
    pub name: String,
    /// Multiplier on the SKU's placement CoV.
    pub placement_scale: f64,
    /// Multiplier on the SKU's interference std.
    pub interference_scale: f64,
    /// Probability a freshly placed VM lands on a crowded host.
    pub crowded_prob: f64,
    /// Fractional performance penalty on memory/cache/OS for crowded hosts.
    pub crowded_penalty: f64,
}

impl Region {
    /// `westus2` — the paper's primary region.
    pub fn westus2() -> Self {
        Region {
            name: "westus2".to_string(),
            placement_scale: 1.0,
            interference_scale: 1.0,
            crowded_prob: 0.04,
            crowded_penalty: 0.05,
        }
    }

    /// `eastus` — slightly busier than westus2 in the paper's Figure 4.
    pub fn eastus() -> Self {
        Region {
            name: "eastus".to_string(),
            placement_scale: 1.08,
            interference_scale: 1.05,
            crowded_prob: 0.06,
            crowded_penalty: 0.05,
        }
    }

    /// `centralus` — the higher-variability region of §6.2, with a heavier
    /// crowded-host subpopulation ("fewer high-performing machines").
    pub fn centralus() -> Self {
        Region {
            name: "centralus".to_string(),
            placement_scale: 1.25,
            interference_scale: 1.25,
            crowded_prob: 0.30,
            crowded_penalty: 0.10,
        }
    }

    /// CloudLab — isolated bare metal; no crowded hosts.
    pub fn cloudlab() -> Self {
        Region {
            name: "cloudlab".to_string(),
            placement_scale: 1.0,
            interference_scale: 1.0,
            crowded_prob: 0.0,
            crowded_penalty: 0.0,
        }
    }

    /// Every built-in region, in a fixed order (noise-regime axes of
    /// campaign grids iterate this).
    pub fn all() -> Vec<Region> {
        vec![
            Region::westus2(),
            Region::eastus(),
            Region::centralus(),
            Region::cloudlab(),
        ]
    }

    /// Looks up a built-in region by name.
    pub fn by_name(name: &str) -> Option<Region> {
        Region::all().into_iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralus_noisier_than_westus2() {
        let c = Region::centralus();
        let w = Region::westus2();
        assert!(c.placement_scale > w.placement_scale);
        assert!(c.crowded_prob > w.crowded_prob);
    }

    #[test]
    fn cloudlab_has_no_crowding() {
        let r = Region::cloudlab();
        assert_eq!(r.crowded_prob, 0.0);
        assert_eq!(r.crowded_penalty, 0.0);
    }

    #[test]
    fn by_name_round_trips() {
        for region in Region::all() {
            assert_eq!(Region::by_name(&region.name), Some(region.clone()));
        }
        assert_eq!(Region::by_name("marsnorth1"), None);
    }

    #[test]
    fn names_distinct() {
        let names = [
            Region::westus2().name,
            Region::eastus().name,
            Region::centralus().name,
            Region::cloudlab().name,
        ];
        let mut unique = names.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
