//! Burstable-VM credit model.
//!
//! Azure B-series VMs (§3.2, Figure 3) earn CPU/disk credits at a baseline
//! rate and spend them while bursting above baseline. When credits deplete,
//! performance drops by more than 50%, producing the *bimodal* distribution
//! the paper observes — the key reason burstable VMs are declared unsuitable
//! for autotuning without credit awareness.
//!
//! A measurement epoch (≈5 minutes) is modelled as several credit *ticks*;
//! a VM whose bank empties at any tick of the epoch is throttled for that
//! measurement. Under sustained marginally-over-baseline load the balance
//! self-organizes around the depletion boundary, so measurement noise flips
//! individual samples between the fast and throttled modes — exactly the
//! bimodality of Figure 3.

/// Static credit parameters of a burstable SKU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditSpec {
    /// Maximum banked credits.
    pub capacity: f64,
    /// Credits earned per tick.
    pub accrual_per_tick: f64,
    /// Credits burned per tick at full over-baseline utilization.
    pub burn_per_tick: f64,
    /// Utilization below which no credits are burned.
    pub baseline_util: f64,
    /// Credit ticks per measurement epoch.
    pub ticks_per_epoch: usize,
    /// Multiplicative performance factor applied to CPU and disk while
    /// depleted (0.2 ≈ the ">50% degradation" of Figure 3 after demand
    /// weighting).
    pub depleted_factor: f64,
}

impl CreditSpec {
    /// Parameters tuned so the §3.2 instrument set drives B8ms VMs to the
    /// depletion boundary, reproducing Figure 3's bimodality.
    pub fn b_series_default() -> Self {
        CreditSpec {
            capacity: 60.0,
            accrual_per_tick: 0.4,
            burn_per_tick: 6.0,
            baseline_util: 0.30,
            ticks_per_epoch: 6,
            depleted_factor: 0.20,
        }
    }
}

/// Mutable credit balance of one burstable VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditState {
    spec: CreditSpec,
    balance: f64,
}

impl CreditState {
    /// Creates a state with a full balance.
    pub fn new(spec: CreditSpec) -> Self {
        CreditState {
            spec,
            balance: spec.capacity,
        }
    }

    /// Creates a state with a given starting balance (clamped to
    /// `[0, capacity]`) — short-lived VMs inherit a random bank.
    pub fn with_balance(spec: CreditSpec, balance: f64) -> Self {
        CreditState {
            spec,
            balance: balance.clamp(0.0, spec.capacity),
        }
    }

    /// Runs one measurement epoch at the given utilization with a
    /// multiplicative burn-noise factor (work per wall-clock window varies).
    /// Returns `true` if the VM was depleted (throttled) at any tick.
    pub fn run_epoch(&mut self, utilization: f64, burn_noise: f64) -> bool {
        let util = utilization.clamp(0.0, 1.0);
        let excess =
            (util - self.spec.baseline_util).max(0.0) / (1.0 - self.spec.baseline_util).max(1e-9);
        let burn = self.spec.burn_per_tick * excess * burn_noise.max(0.0);
        let mut depleted = false;
        for _ in 0..self.spec.ticks_per_epoch {
            self.balance += self.spec.accrual_per_tick - burn;
            self.balance = self.balance.clamp(0.0, self.spec.capacity);
            if self.balance <= f64::EPSILON && excess > 0.0 {
                depleted = true;
            }
        }
        depleted
    }

    /// Idles one epoch (accrual only).
    pub fn idle_epoch(&mut self) {
        self.balance = (self.balance
            + self.spec.accrual_per_tick * self.spec.ticks_per_epoch as f64)
            .min(self.spec.capacity);
    }

    /// Current balance.
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.balance <= f64::EPSILON
    }

    /// The static spec.
    pub fn spec(&self) -> &CreditSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_vm_never_depletes() {
        let mut state = CreditState::new(CreditSpec::b_series_default());
        for _ in 0..10_000 {
            assert!(!state.run_epoch(0.1, 1.0));
        }
        assert!((state.balance() - state.spec().capacity).abs() < 1e-9);
    }

    #[test]
    fn sustained_burst_depletes() {
        let mut state = CreditState::new(CreditSpec::b_series_default());
        let mut depleted_at = None;
        for i in 0..10_000 {
            if state.run_epoch(1.0, 1.0) {
                depleted_at = Some(i);
                break;
            }
        }
        let at = depleted_at.expect("sustained burst must deplete");
        // capacity 60, net burn (6 - 0.4) * 6 = 33.6 per epoch => ~2 epochs.
        assert!(at < 5, "depleted at {at}");
    }

    #[test]
    fn recovery_after_idle() {
        let spec = CreditSpec::b_series_default();
        let mut state = CreditState::with_balance(spec, 0.0);
        assert!(state.is_empty());
        for _ in 0..30 {
            state.idle_epoch();
        }
        assert!(state.balance() > spec.capacity * 0.9);
        assert!(
            !state.run_epoch(1.0, 1.0),
            "a full bank survives one epoch of bursting"
        );
    }

    #[test]
    fn balance_clamped_to_capacity() {
        let spec = CreditSpec::b_series_default();
        let state = CreditState::with_balance(spec, 1e9);
        assert_eq!(state.balance(), spec.capacity);
    }

    #[test]
    fn partial_util_burns_slower() {
        let spec = CreditSpec::b_series_default();
        let mut full = CreditState::new(spec);
        let mut partial = CreditState::new(spec);
        full.run_epoch(1.0, 1.0);
        partial.run_epoch(0.6, 1.0);
        assert!(partial.balance() > full.balance());
    }

    #[test]
    fn below_baseline_accrues() {
        let spec = CreditSpec::b_series_default();
        let mut state = CreditState::with_balance(spec, 10.0);
        state.run_epoch(spec.baseline_util * 0.9, 1.0);
        assert!(state.balance() > 10.0);
    }

    #[test]
    fn burn_noise_scales_depletion() {
        let spec = CreditSpec::b_series_default();
        let mut calm = CreditState::with_balance(spec, 30.0);
        let mut noisy = CreditState::with_balance(spec, 30.0);
        calm.run_epoch(0.6, 0.5);
        noisy.run_epoch(0.6, 2.0);
        assert!(noisy.balance() < calm.balance());
    }
}
