//! The five platform components the paper's study isolates.

/// A hardware/OS component whose performance varies in the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// CPU compute throughput.
    Cpu,
    /// Virtual disk bandwidth/IOPS.
    Disk,
    /// Memory bandwidth.
    Memory,
    /// Last-level cache bandwidth (shared, unpartitioned).
    Cache,
    /// OS operations that trap to the hypervisor (VMEXIT-heavy).
    Os,
}

impl Component {
    /// All components, in display order.
    pub const ALL: [Component; 5] = [
        Component::Cpu,
        Component::Disk,
        Component::Memory,
        Component::Cache,
        Component::Os,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Cpu => "CPU",
            Component::Disk => "Disk",
            Component::Memory => "Mem",
            Component::Cache => "Cache",
            Component::Os => "OS",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One `f64` per component; used for performance factors, demand weights,
/// interference states and noise parameters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentVec {
    /// CPU entry.
    pub cpu: f64,
    /// Disk entry.
    pub disk: f64,
    /// Memory entry.
    pub memory: f64,
    /// Cache entry.
    pub cache: f64,
    /// OS entry.
    pub os: f64,
}

impl ComponentVec {
    /// Creates a vector from explicit entries.
    pub fn new(cpu: f64, disk: f64, memory: f64, cache: f64, os: f64) -> Self {
        ComponentVec {
            cpu,
            disk,
            memory,
            cache,
            os,
        }
    }

    /// All entries set to `v`.
    pub fn uniform(v: f64) -> Self {
        ComponentVec::new(v, v, v, v, v)
    }

    /// All ones (neutral multiplicative factor).
    pub fn ones() -> Self {
        ComponentVec::uniform(1.0)
    }

    /// Entry for `c`.
    pub fn get(&self, c: Component) -> f64 {
        match c {
            Component::Cpu => self.cpu,
            Component::Disk => self.disk,
            Component::Memory => self.memory,
            Component::Cache => self.cache,
            Component::Os => self.os,
        }
    }

    /// Sets the entry for `c`.
    pub fn set(&mut self, c: Component, v: f64) {
        match c {
            Component::Cpu => self.cpu = v,
            Component::Disk => self.disk = v,
            Component::Memory => self.memory = v,
            Component::Cache => self.cache = v,
            Component::Os => self.os = v,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> ComponentVec {
        ComponentVec::new(
            f(self.cpu),
            f(self.disk),
            f(self.memory),
            f(self.cache),
            f(self.os),
        )
    }

    /// Elementwise combination with another vector.
    pub fn zip(&self, other: &ComponentVec, f: impl Fn(f64, f64) -> f64) -> ComponentVec {
        ComponentVec::new(
            f(self.cpu, other.cpu),
            f(self.disk, other.disk),
            f(self.memory, other.memory),
            f(self.cache, other.cache),
            f(self.os, other.os),
        )
    }

    /// Sum of entries.
    pub fn sum(&self) -> f64 {
        self.cpu + self.disk + self.memory + self.cache + self.os
    }

    /// Normalizes entries to sum to 1 (returns a copy; a zero vector is
    /// returned unchanged).
    pub fn normalized(&self) -> ComponentVec {
        let s = self.sum();
        if s == 0.0 {
            *self
        } else {
            self.map(|v| v / s)
        }
    }

    /// Weighted geometric mean of `speeds` with `self` as (already
    /// normalized) weights: `prod_c speeds[c]^{w_c}`.
    ///
    /// This is the simulator's composition law: a workload whose demand is
    /// 50% disk and 50% memory on a machine with disk at 0.9x and memory at
    /// 1.1x runs at `0.9^0.5 * 1.1^0.5 ≈ 0.995x`. Multiplicative
    /// composition keeps component CoVs additive in log space, matching how
    /// the paper reasons about noise propagation.
    pub fn weighted_geomean(&self, speeds: &ComponentVec) -> f64 {
        let mut log_sum = 0.0;
        for c in Component::ALL {
            let w = self.get(c);
            if w > 0.0 {
                log_sum += w * speeds.get(c).max(1e-9).ln();
            }
        }
        log_sum.exp()
    }

    /// Iterates `(component, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        Component::ALL.into_iter().map(move |c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut v = ComponentVec::default();
        for (i, c) in Component::ALL.into_iter().enumerate() {
            v.set(c, i as f64);
        }
        for (i, c) in Component::ALL.into_iter().enumerate() {
            assert_eq!(v.get(c), i as f64);
        }
    }

    #[test]
    fn normalized_sums_to_one() {
        let v = ComponentVec::new(1.0, 2.0, 3.0, 4.0, 10.0);
        assert!((v.normalized().sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_identity() {
        let v = ComponentVec::default();
        assert_eq!(v.normalized(), v);
    }

    #[test]
    fn geomean_of_ones_is_one() {
        let w = ComponentVec::uniform(0.2);
        assert!((w.weighted_geomean(&ComponentVec::ones()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_single_component_passthrough() {
        let mut w = ComponentVec::default();
        w.set(Component::Disk, 1.0);
        let mut speeds = ComponentVec::ones();
        speeds.set(Component::Disk, 0.7);
        assert!((w.weighted_geomean(&speeds) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn geomean_between_extremes() {
        let w = ComponentVec::new(0.5, 0.5, 0.0, 0.0, 0.0);
        let speeds = ComponentVec::new(0.8, 1.2, 5.0, 5.0, 5.0);
        let g = w.weighted_geomean(&speeds);
        assert!(g > 0.8 && g < 1.2);
        // Unused components must not leak in.
        assert!((g - (0.8f64.sqrt() * 1.2f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn zip_and_map() {
        let a = ComponentVec::uniform(2.0);
        let b = ComponentVec::uniform(3.0);
        assert_eq!(a.zip(&b, |x, y| x * y), ComponentVec::uniform(6.0));
        assert_eq!(a.map(|x| x + 1.0), ComponentVec::uniform(3.0));
    }

    #[test]
    fn iter_yields_all_components() {
        let v = ComponentVec::new(1.0, 2.0, 3.0, 4.0, 5.0);
        let collected: Vec<(Component, f64)> = v.iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[0], (Component::Cpu, 1.0));
        assert_eq!(collected[4], (Component::Os, 5.0));
    }
}
