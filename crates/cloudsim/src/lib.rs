//! Deterministic cloud-platform simulator for the TUNA reproduction.
//!
//! The paper's substrate is Microsoft Azure (plus CloudLab bare metal); this
//! crate replaces it with a seedable simulator calibrated to the paper's own
//! 68-week measurement study (§3.2):
//!
//! | Component | Paper CoV (D8s_v5, non-burstable) | Model |
//! |-----------|-----------------------------------|-------|
//! | CPU       | 0.17%                             | placement + AR(1) interference |
//! | Disk      | 0.36%                             | placement + AR(1) interference |
//! | Memory    | 4.92%                             | placement + AR(1) interference |
//! | OS        | 9.82%                             | placement + AR(1) interference |
//! | Cache     | 14.39%                            | placement + AR(1) interference |
//!
//! Every [`machine::Machine`] draws *placement factors* (which
//! physical host it landed on — fixed for the VM's life, modulo rare
//! migrations) and evolves *interference* (noisy neighbors) as mean-
//! reverting AR(1) processes. Burstable SKUs add a credit model whose
//! depletion produces the bimodal performance of Figure 3.
//!
//! The [`study`] module replays the paper's longitudinal methodology
//! (long-running vs short-lived VMs, multiple regions) to regenerate
//! Figures 3, 4 and 6 and the Table 1 "This Work" row.
//!
//! # Examples
//!
//! ```
//! use tuna_cloudsim::cluster::Cluster;
//! use tuna_cloudsim::components::ComponentVec;
//! use tuna_cloudsim::region::Region;
//! use tuna_cloudsim::sku::VmSku;
//!
//! let mut cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 42);
//! let demand = ComponentVec::uniform(0.2);
//! let snap = cluster.machine_mut(0).observe(&demand);
//! assert!(snap.speeds.cpu > 0.9 && snap.speeds.cpu < 1.1);
//! ```

pub mod cluster;
pub mod components;
pub mod credits;
pub mod machine;
pub mod microbench;
pub mod region;
pub mod sku;
pub mod study;

pub use cluster::Cluster;
pub use components::{Component, ComponentVec};
pub use machine::{Machine, MachineId, Snapshot};
pub use region::Region;
pub use sku::VmSku;

#[cfg(test)]
mod smoke {
    use crate::credits::CreditState;
    use crate::{Cluster, ComponentVec, Region, VmSku};

    #[test]
    fn d8s_v5_credit_accounting() {
        // The paper's main worker SKU has no credit bank; the burstable
        // B8ms does, and its balance stays within [0, capacity] while
        // burning above baseline and accruing when idle.
        assert!(!VmSku::d8s_v5().is_burstable());
        let b8ms = VmSku::b8ms();
        assert!(b8ms.is_burstable());

        let spec = b8ms.burstable.unwrap();
        let mut credits = CreditState::new(spec);
        let full = credits.balance();
        assert!((full - spec.capacity).abs() < 1e-12);

        credits.run_epoch(1.0, 1.0);
        assert!(
            credits.balance() < full,
            "sustained burst must burn credits"
        );
        assert!(credits.balance() >= 0.0);

        for _ in 0..10_000 {
            credits.idle_epoch();
        }
        assert!(
            credits.balance() <= spec.capacity,
            "idling must never overfill the bank"
        );
    }

    #[test]
    fn cluster_observation_within_physical_bounds() {
        let mut cluster = Cluster::new(4, VmSku::d8s_v5(), Region::westus2(), 7);
        let demand = ComponentVec::uniform(0.5);
        for node in 0..4 {
            let snap = cluster.machine_mut(node).observe(&demand);
            for (_, speed) in snap.speeds.iter() {
                assert!(speed > 0.0 && speed < 10.0, "speed {speed} out of range");
            }
        }
    }
}
