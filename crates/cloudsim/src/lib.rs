//! Deterministic cloud-platform simulator for the TUNA reproduction.
//!
//! The paper's substrate is Microsoft Azure (plus CloudLab bare metal); this
//! crate replaces it with a seedable simulator calibrated to the paper's own
//! 68-week measurement study (§3.2):
//!
//! | Component | Paper CoV (D8s_v5, non-burstable) | Model |
//! |-----------|-----------------------------------|-------|
//! | CPU       | 0.17%                             | placement + AR(1) interference |
//! | Disk      | 0.36%                             | placement + AR(1) interference |
//! | Memory    | 4.92%                             | placement + AR(1) interference |
//! | OS        | 9.82%                             | placement + AR(1) interference |
//! | Cache     | 14.39%                            | placement + AR(1) interference |
//!
//! Every [`machine::Machine`] draws *placement factors* (which
//! physical host it landed on — fixed for the VM's life, modulo rare
//! migrations) and evolves *interference* (noisy neighbors) as mean-
//! reverting AR(1) processes. Burstable SKUs add a credit model whose
//! depletion produces the bimodal performance of Figure 3.
//!
//! The [`study`] module replays the paper's longitudinal methodology
//! (long-running vs short-lived VMs, multiple regions) to regenerate
//! Figures 3, 4 and 6 and the Table 1 "This Work" row.
//!
//! # Examples
//!
//! ```
//! use tuna_cloudsim::cluster::Cluster;
//! use tuna_cloudsim::components::ComponentVec;
//! use tuna_cloudsim::region::Region;
//! use tuna_cloudsim::sku::VmSku;
//!
//! let mut cluster = Cluster::new(10, VmSku::d8s_v5(), Region::westus2(), 42);
//! let demand = ComponentVec::uniform(0.2);
//! let snap = cluster.machine_mut(0).observe(&demand);
//! assert!(snap.speeds.cpu > 0.9 && snap.speeds.cpu < 1.1);
//! ```

pub mod cluster;
pub mod components;
pub mod credits;
pub mod machine;
pub mod microbench;
pub mod region;
pub mod sku;
pub mod study;

pub use cluster::Cluster;
pub use components::{Component, ComponentVec};
pub use machine::{Machine, MachineId, Snapshot};
pub use region::Region;
pub use sku::VmSku;
