//! Property-based tests for the statistical core.

use proptest::prelude::*;
use tuna_stats::online::Welford;
use tuna_stats::rng::Rng;
use tuna_stats::summary::{
    coefficient_of_variation, max, mean, median, min, quantile, relative_range, std_dev, variance,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn mean_within_min_max(xs in finite_vec(64)) {
        let m = mean(&xs);
        prop_assert!(m >= min(&xs).unwrap() - 1e-9);
        prop_assert!(m <= max(&xs).unwrap() + 1e-9);
    }

    #[test]
    fn variance_nonnegative(xs in finite_vec(64)) {
        prop_assert!(variance(&xs) >= 0.0);
        prop_assert!(std_dev(&xs) >= 0.0);
    }

    #[test]
    fn relative_range_nonnegative(xs in prop::collection::vec(1.0f64..1e6, 2..64)) {
        prop_assert!(relative_range(&xs) >= 0.0);
    }

    #[test]
    fn relative_range_shift_decreases(xs in prop::collection::vec(1.0f64..100.0, 2..32)) {
        // Adding a positive constant increases the mean but not the range,
        // so relative range must not increase.
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1000.0).collect();
        prop_assert!(relative_range(&shifted) <= relative_range(&xs) + 1e-12);
    }

    #[test]
    fn relative_range_scale_invariant(xs in prop::collection::vec(1.0f64..100.0, 2..32), k in 0.5f64..10.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let a = relative_range(&xs);
        let b = relative_range(&scaled);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn cov_scale_invariant(xs in prop::collection::vec(1.0f64..100.0, 2..32), k in 0.5f64..10.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let a = coefficient_of_variation(&xs);
        let b = coefficient_of_variation(&scaled);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    #[test]
    fn quantile_monotone_in_q(xs in finite_vec(64), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn median_between_extremes(xs in finite_vec(64)) {
        let m = median(&xs);
        prop_assert!(m >= min(&xs).unwrap() - 1e-9);
        prop_assert!(m <= max(&xs).unwrap() + 1e-9);
    }

    #[test]
    fn welford_matches_batch(xs in finite_vec(64)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!((w.mean() - mean(&xs)).abs() < 1e-6_f64.max(mean(&xs).abs() * 1e-9));
        prop_assert!((w.variance() - variance(&xs)).abs() < 1e-3_f64.max(variance(&xs).abs() * 1e-6));
    }

    #[test]
    fn welford_merge_associative(a in finite_vec(32), b in finite_vec(32)) {
        let mut w_all = Welford::new();
        for &x in a.iter().chain(&b) {
            w_all.push(x);
        }
        let mut wa = Welford::new();
        for &x in &a {
            wa.push(x);
        }
        let mut wb = Welford::new();
        for &x in &b {
            wb.push(x);
        }
        wa.merge(&wb);
        prop_assert_eq!(wa.count(), w_all.count());
        prop_assert!((wa.mean() - w_all.mean()).abs() < 1e-6_f64.max(w_all.mean().abs() * 1e-9));
    }

    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), n in 1usize..1000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_fork_deterministic(seed in any::<u64>(), label in any::<u64>()) {
        let root = Rng::seed_from(seed);
        let mut a = root.fork(label);
        let mut b = root.fork(label);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }
}
