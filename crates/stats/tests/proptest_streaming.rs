//! Differential property tests: streaming/selection estimators vs the
//! retained naive oracles.
//!
//! The perf-gate rewrite replaced the clone-and-sort order statistics
//! with selection over scratch buffers (contract: **bit-identical**),
//! and the two-pass moment/correlation estimators with single-pass
//! streaming updates (contract: within a pinned 1e-12 tolerance). Each
//! property here drives one such pair over adversarial inputs —
//! constant windows, sorted windows, NaN-free extreme magnitudes, and
//! temporally correlated AR(1) streams from `tuna_stats::ar1`.

use proptest::prelude::*;
use tuna_stats::ar1::Ar1;
use tuna_stats::corr;
use tuna_stats::online::{P2Quantile, Welford};
use tuna_stats::rng::Rng;
use tuna_stats::summary::{self, FiveNumber};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

/// A temporally correlated AR(1) window around a nominal level of 1.0 —
/// the shape of the cloud-noise windows the pipeline aggregates.
fn ar1_window(seed: u64, phi: f64, n: usize) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed);
    let mut ar = Ar1::new(phi, 0.1, &mut rng).expect("valid AR(1)");
    (0..n).map(|_| 1.0 + ar.step(&mut rng)).collect()
}

/// Relative-ish tolerance pinned by the issue: 1e-12 scaled by
/// magnitude so extreme inputs (1e6, squared in the moments) do not
/// fail on representation noise alone.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + scale.abs())
}

proptest! {
    // ---- selection vs sort: bit-identical contracts ----------------------

    #[test]
    fn quantile_selection_matches_naive_bitwise(xs in finite_vec(64), q in 0.0f64..=1.0) {
        let mut scratch = Vec::new();
        prop_assert_eq!(
            summary::quantile_with(&xs, q, &mut scratch).to_bits(),
            summary::naive::quantile(&xs, q).to_bits()
        );
    }

    #[test]
    fn median_mad_match_naive_bitwise(xs in finite_vec(64)) {
        let mut scratch = Vec::new();
        prop_assert_eq!(
            summary::median_with(&xs, &mut scratch).to_bits(),
            summary::naive::median(&xs).to_bits()
        );
        prop_assert_eq!(
            summary::mad_with(&xs, &mut scratch).to_bits(),
            summary::naive::mad(&xs).to_bits()
        );
    }

    #[test]
    fn five_number_matches_naive_bitwise(xs in finite_vec(64)) {
        let mut scratch = Vec::new();
        let fast = FiveNumber::of_with(&xs, &mut scratch);
        let slow = summary::naive::five_number(&xs);
        prop_assert_eq!(fast.min.to_bits(), slow.min.to_bits());
        prop_assert_eq!(fast.q1.to_bits(), slow.q1.to_bits());
        prop_assert_eq!(fast.median.to_bits(), slow.median.to_bits());
        prop_assert_eq!(fast.q3.to_bits(), slow.q3.to_bits());
        prop_assert_eq!(fast.max.to_bits(), slow.max.to_bits());
    }

    #[test]
    fn single_pass_relative_range_matches_naive_bitwise(xs in finite_vec(64)) {
        prop_assert_eq!(
            summary::relative_range(&xs).to_bits(),
            summary::naive::relative_range(&xs).to_bits()
        );
    }

    #[test]
    fn selection_identical_on_constant_windows(x in -1e6f64..1e6, n in 1usize..48) {
        // Constant windows are the pivot-degenerate worst case for
        // selection; every order statistic must equal the constant.
        let xs = vec![x; n];
        let mut scratch = Vec::new();
        prop_assert_eq!(summary::median_with(&xs, &mut scratch).to_bits(), x.to_bits());
        prop_assert_eq!(summary::quantile_with(&xs, 0.95, &mut scratch).to_bits(), x.to_bits());
        prop_assert_eq!(summary::mad_with(&xs, &mut scratch), 0.0);
    }

    #[test]
    fn selection_identical_on_sorted_windows(mut xs in finite_vec(64), q in 0.0f64..=1.0) {
        // Pre-sorted (and reverse-sorted) inputs are quickselect's
        // classic adversaries.
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut scratch = Vec::new();
        prop_assert_eq!(
            summary::quantile_with(&xs, q, &mut scratch).to_bits(),
            summary::naive::quantile(&xs, q).to_bits()
        );
        xs.reverse();
        prop_assert_eq!(
            summary::quantile_with(&xs, q, &mut scratch).to_bits(),
            summary::naive::quantile(&xs, q).to_bits()
        );
    }

    // ---- streaming vs two-pass: pinned 1e-12 contracts -------------------

    #[test]
    fn welford_matches_batch_mean_variance(xs in finite_vec(64)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let scale = xs.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        prop_assert!(close(w.mean(), summary::mean(&xs), scale));
        prop_assert!(
            (w.variance() - summary::variance(&xs)).abs()
                <= 1e-12 * (1.0 + scale * scale),
            "welford {} vs batch {}",
            w.variance(),
            summary::variance(&xs)
        );
        prop_assert_eq!(w.min(), summary::min(&xs));
        prop_assert_eq!(w.max(), summary::max(&xs));
    }

    #[test]
    fn streaming_pearson_matches_naive(
        xs in prop::collection::vec(-1e6f64..1e6, 2..64),
        seed in any::<u64>()
    ) {
        // Correlate against a noisy linear response so the oracle sees
        // both strong and weak correlations.
        let mut rng = Rng::seed_from(seed);
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x + 1e3 * rng.next_gaussian()).collect();
        let fast = corr::pearson(&xs, &ys);
        let slow = corr::naive::pearson(&xs, &ys);
        // Correlations live in [-1, 1]; 1e-12 is absolute here.
        prop_assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    #[test]
    fn spearman_scratch_matches_allocating_path(xs in finite_vec(32), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let ys: Vec<f64> = xs.iter().map(|_| rng.next_gaussian()).collect();
        let mut scratch = corr::RankScratch::default();
        prop_assert_eq!(
            corr::spearman_with(&xs, &ys, &mut scratch).to_bits(),
            corr::spearman(&xs, &ys).to_bits()
        );
    }

    // ---- AR(1) streams: the pipeline's actual workload -------------------

    #[test]
    fn ar1_stream_streaming_estimators_match_oracles(
        seed in any::<u64>(),
        phi in -0.95f64..0.95,
        n in 2usize..512
    ) {
        let xs = ar1_window(seed, phi, n);
        let mut scratch = Vec::new();
        prop_assert_eq!(
            summary::median_with(&xs, &mut scratch).to_bits(),
            summary::naive::median(&xs).to_bits()
        );
        prop_assert_eq!(
            summary::relative_range(&xs).to_bits(),
            summary::naive::relative_range(&xs).to_bits()
        );
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        prop_assert!(close(w.mean(), summary::mean(&xs), 1.0));
        prop_assert!(close(w.variance(), summary::variance(&xs), 1.0));
    }

    #[test]
    fn p2_extreme_levels_match_sorted_oracle_exactly(xs in finite_vec(256)) {
        // p = 0 and p = 1 are pinned, not approximated: the outer P²
        // markers are the running min/max, so the estimate must equal the
        // sort-based oracle bit-for-bit at any stream length.
        for (level, oracle) in [(0.0, summary::naive::quantile(&xs, 0.0)),
                                (1.0, summary::naive::quantile(&xs, 1.0))] {
            let mut p2 = P2Quantile::new(level);
            for &x in &xs {
                p2.push(x);
            }
            prop_assert_eq!(p2.value().to_bits(), oracle.to_bits(), "level {}", level);
        }
    }

    #[test]
    fn p2_ignores_non_finite_observations(
        xs in finite_vec(128),
        polluted_every in 1usize..8,
        level in 0.0f64..=1.0
    ) {
        // A stream polluted with NaN/±∞ must behave exactly like the
        // filtered stream — same count, same estimate.
        let mut clean = P2Quantile::new(level);
        let mut dirty = P2Quantile::new(level);
        for (i, &x) in xs.iter().enumerate() {
            clean.push(x);
            dirty.push(x);
            if i % polluted_every == 0 {
                dirty.push(f64::NAN);
                dirty.push(f64::INFINITY);
                dirty.push(f64::NEG_INFINITY);
            }
        }
        prop_assert_eq!(clean.count(), dirty.count());
        prop_assert_eq!(clean.value().to_bits(), dirty.value().to_bits());
    }

    #[test]
    fn p2_quantile_tracks_naive_on_ar1_streams(seed in any::<u64>(), phi in -0.9f64..0.9) {
        // P² is an approximation: on a 4k-sample smooth AR(1) stream the
        // estimate must land near the sort-based oracle. The stationary
        // std is 0.1, so 0.05 absolute is a tight-but-safe band.
        let xs = ar1_window(seed, phi, 4096);
        for level in [0.25, 0.5, 0.75, 0.95] {
            let mut p2 = P2Quantile::new(level);
            for &x in &xs {
                p2.push(x);
            }
            let exact = summary::naive::quantile(&xs, level);
            prop_assert!(
                (p2.value() - exact).abs() < 0.05,
                "level {level}: p2 {} vs exact {exact}",
                p2.value()
            );
        }
    }
}
