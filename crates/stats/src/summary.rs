//! Batch statistics over slices.
//!
//! These are the scalar summaries the paper's heuristics are built from,
//! most importantly [`relative_range`] (§4.2) and
//! [`coefficient_of_variation`] (§3).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator); `0.0` when `n < 2`.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation: standard deviation normalized by the mean.
///
/// Returns `0.0` when the mean is zero or the slice has fewer than two
/// elements. This is the dispersion measure used throughout the paper's
/// measurement study (§3.2).
///
/// # Examples
///
/// ```
/// use tuna_stats::summary::coefficient_of_variation;
/// let cov = coefficient_of_variation(&[9.0, 10.0, 11.0]);
/// assert!((cov - 0.1).abs() < 1e-12);
/// ```
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    (std_dev(xs) / m).abs()
}

/// Relative range: `(max - min) / mean`.
///
/// The paper's unstable-configuration heuristic (§4.2): it is insensitive to
/// the *frequency* of outliers (unlike CoV) and needs no per-system scale
/// tuning (unlike the standard deviation). Returns `0.0` for slices with
/// fewer than two elements or zero mean.
///
/// # Examples
///
/// ```
/// use tuna_stats::summary::relative_range;
/// // From the paper's Figure 10 walk-through: {500, 450, 530} -> ~16.2%.
/// let rr = relative_range(&[500.0, 450.0, 530.0]);
/// assert!((rr - 0.1622).abs() < 1e-3);
/// ```
pub fn relative_range(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    ((max - min) / m).abs()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`), matching numpy's default.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (the 0.5 quantile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// 95th-percentile helper used by the latency-oriented workloads.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn p95(xs: &[f64]) -> f64 {
    quantile(xs, 0.95)
}

/// Minimum; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Interquartile range (Q3 - Q1).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn iqr(xs: &[f64]) -> f64 {
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

/// Five-number summary (min, Q1, median, Q3, max) — the boxplot statistics
/// the paper's deployment figures report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        FiveNumber {
            min: min(xs).expect("non-empty"),
            q1: quantile(xs, 0.25),
            median: median(xs),
            q3: quantile(xs, 0.75),
            max: max(xs).expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(relative_range(&[]), 0.0);
        assert_eq!(relative_range(&[5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn relative_range_paper_example() {
        // §5.2: samples 500, 450, 530 -> relative range 16.2% (stable).
        let rr = relative_range(&[500.0, 450.0, 530.0]);
        assert!((rr - 0.16216).abs() < 1e-4, "rr {rr}");
        assert!(rr < 0.30);
    }

    #[test]
    fn relative_range_detects_outlier_regardless_of_count() {
        // One extreme outlier and two extreme outliers give the same
        // relative range — the detector must not be biased by incidence.
        let one = relative_range(&[100.0, 100.0, 100.0, 100.0, 30.0]);
        let two = relative_range(&[100.0, 100.0, 100.0, 30.0, 30.0]);
        assert!(one > 0.30 && two > 0.30);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&a, 0.3), quantile(&b, 0.3));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn five_number_summary() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = FiveNumber::of(&xs);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert!(f.q1 <= f.median && f.median <= f.q3);
    }

    #[test]
    fn cov_scale_invariant() {
        let xs = [9.0, 10.0, 11.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1000.0).collect();
        assert!((coefficient_of_variation(&xs) - coefficient_of_variation(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn p95_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((p95(&xs) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn iqr_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!(iqr(&xs) > 0.0);
    }
}
