//! Batch statistics over slices.
//!
//! These are the scalar summaries the paper's heuristics are built from,
//! most importantly [`relative_range`] (§4.2) and
//! [`coefficient_of_variation`] (§3).
//!
//! # Hot-path design
//!
//! The per-trial sampling loop calls these summaries once per pipeline
//! iteration over every sample a config has gathered, so they are written
//! to avoid the classic clone-and-sort pattern:
//!
//! - order statistics ([`quantile`], [`median`], [`mad`], [`iqr`],
//!   [`FiveNumber`]) use **selection** (`select_nth_unstable_by`, expected
//!   O(n)) instead of a full sort, and every one has a `*_with` variant
//!   taking a caller-owned scratch buffer so steady-state callers allocate
//!   nothing;
//! - [`relative_range`] folds min / max / mean in a **single pass**;
//! - the old sort-based implementations are retained verbatim in
//!   [`naive`] as differential-test oracles and benchmark baselines.
//!
//! Selection returns the same order statistics a full sort would, so the
//! fast paths are bit-identical to their oracles (pinned by the
//! `proptest_streaming` differential suite). One documented exception:
//! inputs mixing `-0.0` and `+0.0` compare equal, so which zero lands at
//! a selected rank is unspecified — results can differ from the oracle
//! in the sign bit of a zero (never in value).

use std::cmp::Ordering;

/// Reference implementations retained as oracles.
///
/// These are the original clone-and-sort (or two-pass) code paths the
/// streaming/selection rewrites replaced. They are kept public — not
/// `#[cfg(test)]` — because the differential property tests live in the
/// crate's integration-test tree and the `bench_stats` microbenchmarks
/// compare against them from another crate. Do not call them from
/// production code.
pub mod naive {
    /// Sort-based linear-interpolation quantile (the pre-streaming
    /// implementation of [`super::quantile`]).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `q` is outside `[0, 1]`.
    pub fn quantile(xs: &[f64], q: f64) -> f64 {
        assert!(!xs.is_empty(), "quantile of empty slice");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// Sort-based median.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn median(xs: &[f64]) -> f64 {
        quantile(xs, 0.5)
    }

    /// Clone-and-sort median absolute deviation.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn mad(xs: &[f64]) -> f64 {
        let med = median(xs);
        let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
        median(&devs)
    }

    /// Two-pass relative range (min/max pass, then a mean pass).
    pub fn relative_range(xs: &[f64]) -> f64 {
        if xs.len() < 2 {
            return 0.0;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        let m = super::mean(xs);
        if m == 0.0 {
            return 0.0;
        }
        ((max - min) / m).abs()
    }

    /// Five sort-based quantile evaluations (the pre-streaming
    /// [`super::FiveNumber::of`]).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn five_number(xs: &[f64]) -> super::FiveNumber {
        super::FiveNumber {
            min: super::min(xs).expect("non-empty"),
            q1: quantile(xs, 0.25),
            median: median(xs),
            q3: quantile(xs, 0.75),
            max: super::max(xs).expect("non-empty"),
        }
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator); `0.0` when `n < 2`.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation: standard deviation normalized by the mean.
///
/// Returns `0.0` when the mean is zero or the slice has fewer than two
/// elements. This is the dispersion measure used throughout the paper's
/// measurement study (§3.2).
///
/// # Examples
///
/// ```
/// use tuna_stats::summary::coefficient_of_variation;
/// let cov = coefficient_of_variation(&[9.0, 10.0, 11.0]);
/// assert!((cov - 0.1).abs() < 1e-12);
/// ```
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    (std_dev(xs) / m).abs()
}

/// Relative range: `(max - min) / mean`, folded in a single pass.
///
/// The paper's unstable-configuration heuristic (§4.2): it is insensitive to
/// the *frequency* of outliers (unlike CoV) and needs no per-system scale
/// tuning (unlike the standard deviation). Returns `0.0` for slices with
/// fewer than two elements or zero mean.
///
/// # Examples
///
/// ```
/// use tuna_stats::summary::relative_range;
/// // From the paper's Figure 10 walk-through: {500, 450, 530} -> ~16.2%.
/// let rr = relative_range(&[500.0, 450.0, 530.0]);
/// assert!((rr - 0.1622).abs() < 1e-3);
/// ```
pub fn relative_range(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
        sum += x;
    }
    let m = sum / xs.len() as f64;
    if m == 0.0 {
        return 0.0;
    }
    ((max - min) / m).abs()
}

fn total_cmp_no_nan(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}

/// Interpolated quantile of an **already sorted** slice (no copy, no
/// selection). Useful when the caller sorts once and reads many levels.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Selection-based interpolated quantile over a mutable buffer the caller
/// owns (the buffer is permuted, not sorted). Expected O(n), no
/// allocation.
fn quantile_in_place(buf: &mut [f64], q: f64) -> f64 {
    assert!(!buf.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    let pos = q * (buf.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let (_, &mut lo_val, rest) = buf.select_nth_unstable_by(lo, total_cmp_no_nan);
    if pos == lo as f64 {
        lo_val
    } else {
        // The next order statistic is the minimum of the right partition.
        let hi_val = rest.iter().copied().fold(f64::INFINITY, f64::min);
        let frac = pos - lo as f64;
        lo_val * (1.0 - frac) + hi_val * frac
    }
}

/// Linear-interpolation quantile (`q` in `[0, 1]`), matching numpy's
/// default. Computed by selection into `scratch` (expected O(n));
/// allocation-free once `scratch` has warmed up to `xs.len()` capacity.
///
/// Bit-identical to [`naive::quantile`].
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile_with(xs: &[f64], q: f64, scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    scratch.extend_from_slice(xs);
    quantile_in_place(scratch, q)
}

/// Linear-interpolation quantile (`q` in `[0, 1]`), matching numpy's default.
///
/// Convenience wrapper over [`quantile_with`] that owns its scratch; hot
/// loops should hold a scratch buffer and call [`quantile_with`] instead.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut scratch = Vec::new();
    quantile_with(xs, q, &mut scratch)
}

/// Median (the 0.5 quantile) with caller-owned scratch.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median_with(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    quantile_with(xs, 0.5, scratch)
}

/// Median (the 0.5 quantile).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Median absolute deviation (unscaled) with caller-owned scratch: the
/// median of `|x - median(xs)|`. Robust spread estimate used by the
/// perf-gate micro-kernels; both medians run by selection.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mad_with(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    let med = median_with(xs, scratch);
    scratch.clear();
    scratch.extend(xs.iter().map(|x| (x - med).abs()));
    quantile_in_place(scratch, 0.5)
}

/// Median absolute deviation (unscaled).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn mad(xs: &[f64]) -> f64 {
    let mut scratch = Vec::new();
    mad_with(xs, &mut scratch)
}

/// 95th-percentile helper used by the latency-oriented workloads.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn p95(xs: &[f64]) -> f64 {
    quantile(xs, 0.95)
}

/// Minimum; `None` for an empty slice.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Interquartile range (Q3 - Q1) with caller-owned scratch.
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn iqr_with(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    // One copy serves both selections: selection only permutes the
    // buffer, so the second order statistic is unchanged.
    scratch.clear();
    scratch.extend_from_slice(xs);
    quantile_in_place(scratch, 0.75) - quantile_in_place(scratch, 0.25)
}

/// Interquartile range (Q3 - Q1).
///
/// # Panics
///
/// Panics if `xs` is empty.
pub fn iqr(xs: &[f64]) -> f64 {
    let mut scratch = Vec::new();
    iqr_with(xs, &mut scratch)
}

/// Five-number summary (min, Q1, median, Q3, max) — the boxplot statistics
/// the paper's deployment figures report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary with caller-owned scratch: one
    /// copy + one sort instead of the five clone-and-sort quantile calls
    /// of [`naive::five_number`], with bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of_with(xs: &[f64], scratch: &mut Vec<f64>) -> Self {
        assert!(!xs.is_empty(), "five-number summary of empty slice");
        scratch.clear();
        scratch.extend_from_slice(xs);
        scratch.sort_unstable_by(total_cmp_no_nan);
        FiveNumber {
            min: scratch[0],
            q1: quantile_of_sorted(scratch, 0.25),
            median: quantile_of_sorted(scratch, 0.5),
            q3: quantile_of_sorted(scratch, 0.75),
            max: scratch[scratch.len() - 1],
        }
    }

    /// Computes the five-number summary of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> Self {
        let mut scratch = Vec::new();
        Self::of_with(xs, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(relative_range(&[]), 0.0);
        assert_eq!(relative_range(&[5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn relative_range_paper_example() {
        // §5.2: samples 500, 450, 530 -> relative range 16.2% (stable).
        let rr = relative_range(&[500.0, 450.0, 530.0]);
        assert!((rr - 0.16216).abs() < 1e-4, "rr {rr}");
        assert!(rr < 0.30);
    }

    #[test]
    fn relative_range_detects_outlier_regardless_of_count() {
        // One extreme outlier and two extreme outliers give the same
        // relative range — the detector must not be biased by incidence.
        let one = relative_range(&[100.0, 100.0, 100.0, 100.0, 30.0]);
        let two = relative_range(&[100.0, 100.0, 100.0, 30.0, 30.0]);
        assert!(one > 0.30 && two > 0.30);
    }

    #[test]
    fn relative_range_matches_naive_oracle_bitwise() {
        let xs = [500.0, 450.0, 530.0, 100.0, 987.5, 3.25];
        for n in 0..xs.len() {
            assert_eq!(relative_range(&xs[..n]), naive::relative_range(&xs[..n]));
        }
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&xs, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&a, 0.3), quantile(&b, 0.3));
    }

    #[test]
    fn selection_matches_naive_oracle_bitwise() {
        let xs = [5.5, 1.25, -3.0, 2.0, 4.0, 4.0, 11.75, 0.0, -3.0];
        let mut scratch = Vec::new();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(quantile_with(&xs, q, &mut scratch), naive::quantile(&xs, q));
        }
        assert_eq!(median_with(&xs, &mut scratch), naive::median(&xs));
        assert_eq!(mad_with(&xs, &mut scratch), naive::mad(&xs));
        assert_eq!(
            FiveNumber::of_with(&xs, &mut scratch),
            naive::five_number(&xs)
        );
    }

    #[test]
    fn quantile_of_sorted_matches_quantile() {
        let mut xs = vec![9.0, 2.0, 7.0, 4.0, 1.0, 8.0];
        let q95 = quantile(&xs, 0.95);
        xs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(quantile_of_sorted(&xs, 0.95), q95);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn five_number_summary() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let f = FiveNumber::of(&xs);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert!(f.q1 <= f.median && f.median <= f.q3);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[7.0, 7.0, 7.0, 7.0]), 0.0);
    }

    #[test]
    fn mad_robust_to_one_outlier() {
        // One wild outlier barely moves the MAD, unlike the std dev.
        let clean = mad(&[10.0, 11.0, 9.0, 10.5, 9.5]);
        let dirty = mad(&[10.0, 11.0, 9.0, 10.5, 1000.0]);
        assert!(dirty < clean * 3.0, "clean {clean} dirty {dirty}");
    }

    #[test]
    fn cov_scale_invariant() {
        let xs = [9.0, 10.0, 11.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 1000.0).collect();
        assert!((coefficient_of_variation(&xs) - coefficient_of_variation(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn p95_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((p95(&xs) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn iqr_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!(iqr(&xs) > 0.0);
    }

    #[test]
    fn scratch_is_reusable_across_sizes() {
        let mut scratch = Vec::new();
        assert_eq!(median_with(&[1.0, 2.0, 3.0, 4.0, 5.0], &mut scratch), 3.0);
        assert_eq!(median_with(&[10.0, 20.0], &mut scratch), 15.0);
        assert_eq!(median_with(&[42.0], &mut scratch), 42.0);
    }
}
