//! Per-column standardization (z-scoring) for ML pipelines.
//!
//! Algorithm 1 of the paper composes `RandomForestRegressor ∘ Standardize`;
//! [`StandardScaler`] is the `Standardize` half.

/// Fitted per-column mean/std transformer.
///
/// Columns with zero variance are passed through centred but unscaled, so
/// constant features do not produce NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits a scaler to a design matrix (rows = samples, columns =
    /// features).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit scaler to zero rows");
        let width = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == width),
            "inconsistent row widths"
        );
        let n = rows.len() as f64;
        let mut means = vec![0.0; width];
        for row in rows {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for row in rows {
            for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(row) {
                *s += (x - m) * (x - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // Constant column: centre but do not scale.
            }
        }
        StandardScaler { means, stds }
    }

    /// Transforms one row in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        for ((x, &m), &s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Returns a transformed copy of `rows`.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|r| {
                let mut out = r.clone();
                self.transform_row(&mut out);
                out
            })
            .collect()
    }

    /// Number of fitted columns.
    pub fn width(&self) -> usize {
        self.means.len()
    }

    /// Fitted column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted column standard deviations (population, with zero-variance
    /// columns replaced by 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_to_zero_mean_unit_std() {
        let rows = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let scaler = StandardScaler::fit(&rows);
        let t = scaler.transform(&rows);
        for col in 0..2 {
            let vals: Vec<f64> = t.iter().map(|r| r[col]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-12, "col {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {col} var {var}");
        }
    }

    #[test]
    fn constant_column_does_not_nan() {
        let rows = vec![vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]];
        let scaler = StandardScaler::fit(&rows);
        let t = scaler.transform(&rows);
        assert!(t.iter().all(|r| r.iter().all(|x| x.is_finite())));
        assert!(t.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let mut bad = vec![1.0];
        scaler.transform_row(&mut bad);
    }
}
