//! Minimal hand-rolled JSON support shared across the workspace.
//!
//! The workspace builds fully offline, so there is no serde to lean on;
//! instead every subsystem that speaks JSON — the campaign
//! [`ResultStore`](https://docs.rs) mirror, the perf-gate's `BENCH.json`,
//! and the `tuna-serve` wire protocol — uses this one writer/parser pair:
//!
//! - **Writing** is schema-by-hand: callers format their own documents
//!   and use [`quote`] for string literals and [`fmt_f64`] /
//!   [`fmt_opt_f64`] for numbers. Floats render with `{:?}` (lossless
//!   round-trip through `parse::<f64>()`); non-finite values render as
//!   `null` because JSON has no literal for them.
//! - **Parsing** is a small recursive-descent parser over the full JSON
//!   grammar ([`parse`] → [`Value`]); malformed or truncated input
//!   always comes back as `Err`, never a panic, which is what lets the
//!   serve daemon feed it raw network bytes.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object field list, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience: object field lookup on a `Value`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|obj| obj.iter().find(|(k, _)| k == name).map(|(_, v)| v))
    }
}

/// Looks up an object field, erroring with the field name when absent.
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, String> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{name}'"))
}

/// Quotes a string as a JSON literal with the escapes our documents can
/// contain (quotes, backslashes, newlines, tabs and other control
/// characters).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number: `{:?}` (lossless through
/// `str::parse::<f64>`) for finite values, `null` for NaN and the
/// infinities, which JSON cannot represent.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional float: `None` and non-finite values render as
/// `null`.
pub fn fmt_opt_f64(v: Option<f64>) -> String {
    match v {
        None => "null".to_string(),
        Some(x) => fmt_f64(x),
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a byte-positioned message on malformed or truncated input —
/// never panics, even on garbage or mid-codepoint truncation.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

/// Nesting depth bound: documents deeper than this are rejected instead
/// of recursing toward a stack overflow (the serve daemon parses
/// attacker-controlled bytes).
const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = read_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let cp = match hex {
                            // A high surrogate must be followed by an
                            // escaped low surrogate: that pair is how
                            // ensure_ascii-style encoders spell every
                            // non-BMP character (e.g. "🚀").
                            0xD800..=0xDBFF => {
                                if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                    return Err("unpaired high surrogate".into());
                                }
                                let low = read_hex4(b, *pos + 3)?;
                                *pos += 6;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => return Err("unpaired low surrogate".into()),
                            cp => cp,
                        };
                        out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through unchanged. The
                // bounds-checked get keeps a truncated document (a
                // lead byte cut off at end-of-input) on the Err
                // path instead of panicking.
                let ch_len = utf8_len(c);
                let s = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or("invalid utf8")?;
                out.push_str(s);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".into())
}

fn read_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    b.get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| "bad \\u escape".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_escapes_quotes_and_backslashes() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn quote_escapes_control_chars() {
        assert_eq!(quote("tab\there"), "\"tab\\there\"");
        assert_eq!(quote("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(quote("\u{0} \u{1f} \u{7}"), "\"\\u0000 \\u001f \\u0007\"");
        // 0x20 and above pass through unescaped.
        assert_eq!(quote("é ☃"), "\"é ☃\"");
    }

    #[test]
    fn quoted_strings_roundtrip_through_parse() {
        for s in ["", "plain", "a\"b\\c", "tab\the\nre", "\u{1}\u{2}", "é☃x"] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn fmt_f64_is_lossless_for_finite() {
        for x in [0.0, -0.0, 1.5, 1.0 / 3.0, 1e-300, 2.5e17, f64::MIN] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn fmt_f64_maps_non_finite_to_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
        assert_eq!(fmt_opt_f64(None), "null");
        assert_eq!(fmt_opt_f64(Some(f64::NAN)), "null");
        assert_eq!(fmt_opt_f64(Some(2.5)), "2.5");
    }

    #[test]
    fn parse_handles_the_full_grammar() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false]}, "s": "x"}"#)
            .unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        let a = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Null),
            "{v:?}"
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\": }",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "nul",
            "--5",
            "\"bad \\x escape\"",
            "\"\\u12",
            "\"\\udфff\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // A document cut off mid-codepoint must error, not panic.
        assert!(parse("{\"version\": 1, \"x\": \"\u{00c3}").is_err());
        assert!(parse("\"\u{00e9}\"").is_ok());
    }

    #[test]
    fn parse_decodes_surrogate_pairs() {
        // ensure_ascii-style encoders spell non-BMP characters as
        // escaped surrogate pairs; the wire parser must accept them.
        assert_eq!(
            parse("\"\\ud83d\\ude80\"").unwrap().as_str(),
            Some("\u{1F680}")
        );
        assert_eq!(
            parse("\"x\\ud83d\\ude80y\"").unwrap().as_str(),
            Some("x\u{1F680}y")
        );
        // Lone or malformed surrogates are errors, not panics.
        for bad in [
            "\"\\ud83d\"",
            "\"\\ud83d tail\"",
            "\"\\ud83d\\u0041\"",
            "\"\\ude80\"",
            "\"\\ud83d\\ud83d\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let ok = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn field_lookup_names_the_missing_field() {
        let v = parse(r#"{"present": 1}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(field(obj, "present").unwrap().as_f64(), Some(1.0));
        assert!(field(obj, "absent").unwrap_err().contains("'absent'"));
    }
}
