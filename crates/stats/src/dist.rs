//! Sampling distributions used throughout the simulator.
//!
//! All constructors validate their parameters and return
//! `Result<Self, DistError>`; sampling itself is infallible.

use crate::rng::Rng;

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// A scale-like parameter (std-dev, rate, ...) was non-positive or NaN.
    InvalidScale(f64),
    /// A shape-like parameter was out of its valid domain.
    InvalidShape(f64),
    /// A bound pair was inverted or not finite.
    InvalidBounds(f64, f64),
    /// A discrete domain was empty.
    EmptyDomain,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidScale(s) => write!(f, "invalid scale parameter: {s}"),
            DistError::InvalidShape(s) => write!(f, "invalid shape parameter: {s}"),
            DistError::InvalidBounds(lo, hi) => write!(f, "invalid bounds: [{lo}, {hi}]"),
            DistError::EmptyDomain => write!(f, "empty discrete domain"),
        }
    }
}

impl std::error::Error for DistError {}

/// A distribution over `f64` values that can be sampled with an [`Rng`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> f64;

    /// Draws `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tuna_stats::dist::{Distribution, Uniform};
    /// use tuna_stats::rng::Rng;
    /// let u = Uniform::new(2.0, 3.0).unwrap();
    /// let x = u.sample(&mut Rng::seed_from(0));
    /// assert!((2.0..3.0).contains(&x));
    /// ```
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(DistError::InvalidBounds(lo, hi));
        }
        Ok(Uniform { lo, hi })
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation (`std >= 0`; zero yields a point mass).
    pub fn new(mean: f64, std: f64) -> Result<Self, DistError> {
        if !std.is_finite() || std < 0.0 {
            return Err(DistError::InvalidScale(std));
        }
        if !mean.is_finite() {
            return Err(DistError::InvalidShape(mean));
        }
        Ok(Normal { mean, std })
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std(&self) -> f64 {
        self.std
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std * rng.next_gaussian()
    }
}

/// Normal distribution truncated to `[lo, hi]`, sampled by rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    inner: Normal,
    lo: f64,
    hi: f64,
}

impl TruncatedNormal {
    /// Creates a truncated normal.
    ///
    /// Falls back to clamping when the acceptance region is far in the tail
    /// (> 100 rejected draws), which keeps sampling O(1) in pathological
    /// parameterizations.
    pub fn new(mean: f64, std: f64, lo: f64, hi: f64) -> Result<Self, DistError> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(DistError::InvalidBounds(lo, hi));
        }
        Ok(TruncatedNormal {
            inner: Normal::new(mean, std)?,
            lo,
            hi,
        })
    }
}

impl Distribution for TruncatedNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        for _ in 0..100 {
            let x = self.inner.sample(rng);
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    log_mean: f64,
    log_std: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    pub fn new(log_mean: f64, log_std: f64) -> Result<Self, DistError> {
        if !log_std.is_finite() || log_std < 0.0 {
            return Err(DistError::InvalidScale(log_std));
        }
        Ok(LogNormal { log_mean, log_std })
    }

    /// Creates a log-normal whose *linear-scale* mean is `mean` and whose
    /// coefficient of variation is `cov`.
    ///
    /// This is the natural parameterization for multiplicative cloud noise:
    /// a component with mean performance 1.0 and 5% CoV is
    /// `LogNormal::from_mean_cov(1.0, 0.05)`.
    pub fn from_mean_cov(mean: f64, cov: f64) -> Result<Self, DistError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(DistError::InvalidShape(mean));
        }
        if !cov.is_finite() || cov < 0.0 {
            return Err(DistError::InvalidScale(cov));
        }
        let sigma2 = (1.0 + cov * cov).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.log_mean + self.log_std * rng.next_gaussian()).exp()
    }
}

/// Bernoulli distribution returning 1.0 with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution; `p` must be in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::InvalidShape(p));
        }
        Ok(Bernoulli { p })
    }
}

impl Distribution for Bernoulli {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p) {
            1.0
        } else {
            0.0
        }
    }
}

/// Exponential distribution with the given rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `rate > 0`.
    pub fn new(rate: f64) -> Result<Self, DistError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(DistError::InvalidScale(rate));
        }
        Ok(Exponential { rate })
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.rate
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; `x_min > 0`, `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, DistError> {
        if !x_min.is_finite() || x_min <= 0.0 {
            return Err(DistError::InvalidScale(x_min));
        }
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(DistError::InvalidShape(alpha));
        }
        Ok(Pareto { x_min, alpha })
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.x_min / (1.0 - rng.next_f64()).powf(1.0 / self.alpha)
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used by the YCSB-C and Wikipedia workload models for key/page popularity.
/// Sampling uses a precomputed cumulative table with binary search, which is
/// exact and fast for the domain sizes we need (<= ~1e6).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::EmptyDomain);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(DistError::InvalidShape(s));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Samples a rank in `1..=n` (most popular item is rank 1).
    pub fn sample_rank(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// The domain size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut Rng) -> f64 {
        self.sample_rank(rng) as f64
    }
}

/// A two-component Gaussian mixture, used to model bimodal burstable-VM
/// performance (credits available vs. depleted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BimodalNormal {
    hi: Normal,
    lo: Normal,
    p_hi: f64,
}

impl BimodalNormal {
    /// Creates a mixture that samples from `hi` with probability `p_hi`,
    /// otherwise from `lo`.
    pub fn new(hi: Normal, lo: Normal, p_hi: f64) -> Result<Self, DistError> {
        if !(0.0..=1.0).contains(&p_hi) {
            return Err(DistError::InvalidShape(p_hi));
        }
        Ok(BimodalNormal { hi, lo, p_hi })
    }
}

impl Distribution for BimodalNormal {
    fn sample(&self, rng: &mut Rng) -> f64 {
        if rng.chance(self.p_hi) {
            self.hi.sample(rng)
        } else {
            self.lo.sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{coefficient_of_variation, mean, std_dev};

    fn rng() -> Rng {
        Rng::seed_from(2024)
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(-1.0, 3.0).unwrap();
        let xs = d.sample_n(&mut rng(), 50_000);
        assert!(xs.iter().all(|&x| (-1.0..3.0).contains(&x)));
        assert!((mean(&xs) - 1.0).abs() < 0.03);
    }

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::new(3.0, -1.0).is_err());
        assert!(Uniform::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let xs = d.sample_n(&mut rng(), 100_000);
        assert!((mean(&xs) - 10.0).abs() < 0.05);
        assert!((std_dev(&xs) - 2.0).abs() < 0.05);
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let d = TruncatedNormal::new(0.0, 5.0, -1.0, 1.0).unwrap();
        let xs = d.sample_n(&mut rng(), 10_000);
        assert!(xs.iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn lognormal_mean_cov_parameterization() {
        let d = LogNormal::from_mean_cov(1.0, 0.05).unwrap();
        let xs = d.sample_n(&mut rng(), 200_000);
        assert!((mean(&xs) - 1.0).abs() < 0.01, "mean {}", mean(&xs));
        let cov = coefficient_of_variation(&xs);
        assert!((cov - 0.05).abs() < 0.005, "cov {cov}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(2.0).unwrap();
        let xs = d.sample_n(&mut rng(), 100_000);
        assert!((mean(&xs) - 0.5).abs() < 0.01);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_minimum() {
        let d = Pareto::new(2.0, 3.0).unwrap();
        let xs = d.sample_n(&mut rng(), 10_000);
        assert!(xs.iter().all(|&x| x >= 2.0));
        // Mean of Pareto(alpha=3, xm=2) is alpha*xm/(alpha-1) = 3.
        assert!((mean(&xs) - 3.0).abs() < 0.1);
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.3).unwrap();
        let xs = d.sample_n(&mut rng(), 100_000);
        assert!((mean(&xs) - 0.3).abs() < 0.01);
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let z = Zipf::new(1000, 0.99).unwrap();
        let mut r = rng();
        let mut counts = vec![0usize; 1001];
        for _ in 0..100_000 {
            counts[z.sample_rank(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[0] == 0);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2).unwrap();
        let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn bimodal_has_two_modes() {
        let hi = Normal::new(1.0, 0.02).unwrap();
        let lo = Normal::new(0.4, 0.02).unwrap();
        let d = BimodalNormal::new(hi, lo, 0.7).unwrap();
        let xs = d.sample_n(&mut rng(), 20_000);
        let hi_count = xs.iter().filter(|&&x| x > 0.7).count();
        let ratio = hi_count as f64 / xs.len() as f64;
        assert!((ratio - 0.7).abs() < 0.02, "ratio {ratio}");
    }
}
