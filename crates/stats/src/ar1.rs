//! First-order autoregressive (AR(1)) processes.
//!
//! Cloud interference is temporally correlated — a noisy neighbor that is
//! busy now is likely still busy a minute from now. The simulator models
//! each machine's per-component interference as a mean-reverting AR(1)
//! process: `x_{t+1} = phi * x_t + eps`, with `eps ~ N(0, sigma_eps^2)`
//! chosen so the *stationary* standard deviation equals a target value.

use crate::rng::Rng;

/// A mean-zero AR(1) process with configurable stationary deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ar1 {
    phi: f64,
    eps_std: f64,
    state: f64,
}

/// Error constructing an [`Ar1`] process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ar1Error {
    /// `phi` must lie strictly inside (-1, 1) for stationarity.
    NonStationaryPhi,
    /// The stationary standard deviation must be finite and non-negative.
    InvalidStd,
}

impl std::fmt::Display for Ar1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ar1Error::NonStationaryPhi => write!(f, "phi outside (-1, 1)"),
            Ar1Error::InvalidStd => write!(f, "invalid stationary std"),
        }
    }
}

impl std::error::Error for Ar1Error {}

impl Ar1 {
    /// Creates a stationary AR(1) with autocorrelation `phi` and stationary
    /// standard deviation `stationary_std`, starting from a stationary draw.
    ///
    /// # Examples
    ///
    /// ```
    /// use tuna_stats::ar1::Ar1;
    /// use tuna_stats::rng::Rng;
    /// let mut rng = Rng::seed_from(3);
    /// let mut p = Ar1::new(0.9, 0.05, &mut rng).unwrap();
    /// let x = p.step(&mut rng);
    /// assert!(x.is_finite());
    /// ```
    pub fn new(phi: f64, stationary_std: f64, rng: &mut Rng) -> Result<Self, Ar1Error> {
        if !(phi.is_finite() && phi.abs() < 1.0) {
            return Err(Ar1Error::NonStationaryPhi);
        }
        if !(stationary_std.is_finite() && stationary_std >= 0.0) {
            return Err(Ar1Error::InvalidStd);
        }
        let eps_std = stationary_std * (1.0 - phi * phi).sqrt();
        let state = stationary_std * rng.next_gaussian();
        Ok(Ar1 {
            phi,
            eps_std,
            state,
        })
    }

    /// Advances one step and returns the new state.
    pub fn step(&mut self, rng: &mut Rng) -> f64 {
        self.state = self.phi * self.state + self.eps_std * rng.next_gaussian();
        self.state
    }

    /// Advances `n` steps, returning the final state (used to fast-forward
    /// a machine's interference between widely spaced measurements).
    pub fn step_n(&mut self, n: usize, rng: &mut Rng) -> f64 {
        for _ in 0..n {
            self.step(rng);
        }
        self.state
    }

    /// Current state without advancing.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Resets the state to a fresh stationary draw (e.g. after a VM
    /// live-migration event lands the guest next to different neighbors).
    pub fn reset(&mut self, rng: &mut Rng) {
        let stationary_std = if self.phi.abs() < 1.0 {
            self.eps_std / (1.0 - self.phi * self.phi).sqrt()
        } else {
            self.eps_std
        };
        self.state = stationary_std * rng.next_gaussian();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::Welford;

    #[test]
    fn stationary_moments() {
        let mut rng = Rng::seed_from(42);
        let mut p = Ar1::new(0.8, 0.1, &mut rng).unwrap();
        let mut w = Welford::new();
        // Burn in, then sample.
        p.step_n(1_000, &mut rng);
        for _ in 0..200_000 {
            w.push(p.step(&mut rng));
        }
        assert!(w.mean().abs() < 0.005, "mean {}", w.mean());
        assert!((w.std_dev() - 0.1).abs() < 0.005, "std {}", w.std_dev());
    }

    #[test]
    fn autocorrelation_near_phi() {
        let mut rng = Rng::seed_from(43);
        let phi = 0.9;
        let mut p = Ar1::new(phi, 1.0, &mut rng).unwrap();
        p.step_n(1_000, &mut rng);
        let xs: Vec<f64> = (0..100_000).map(|_| p.step(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
        let lag1: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>();
        let rho = lag1 / var;
        assert!((rho - phi).abs() < 0.02, "rho {rho}");
    }

    #[test]
    fn rejects_bad_params() {
        let mut rng = Rng::seed_from(1);
        assert_eq!(
            Ar1::new(1.0, 0.1, &mut rng).unwrap_err(),
            Ar1Error::NonStationaryPhi
        );
        assert_eq!(
            Ar1::new(0.5, -0.1, &mut rng).unwrap_err(),
            Ar1Error::InvalidStd
        );
        assert_eq!(
            Ar1::new(f64::NAN, 0.1, &mut rng).unwrap_err(),
            Ar1Error::NonStationaryPhi
        );
    }

    #[test]
    fn zero_std_is_constant_zero_after_burnin() {
        let mut rng = Rng::seed_from(2);
        let mut p = Ar1::new(0.5, 0.0, &mut rng).unwrap();
        for _ in 0..10 {
            assert_eq!(p.step(&mut rng).abs(), 0.0);
        }
    }

    #[test]
    fn reset_changes_state() {
        let mut rng = Rng::seed_from(3);
        let mut p = Ar1::new(0.99, 1.0, &mut rng).unwrap();
        let before = p.state();
        p.reset(&mut rng);
        assert_ne!(before, p.state());
    }
}
