//! Histograms and Gaussian kernel density estimation.
//!
//! Figure 8 of the paper plots the *density* of relative ranges over 1000
//! configurations, with a detection threshold drawn in the trough between
//! the first two peaks. [`Kde`] reproduces that curve; [`Histogram`] backs
//! the distribution summaries printed by the study driver.

use crate::summary;

/// A fixed-width-bin histogram over a closed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    clipped: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or the bounds are invalid.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid bounds"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            clipped: 0,
        }
    }

    /// Adds an observation; values outside the range are counted as clipped.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x < self.lo || x > self.hi {
            self.clipped += 1;
            return;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations that fell outside `[lo, hi]`.
    pub fn clipped(&self) -> u64 {
        self.clipped
    }

    /// Total observations pushed (including clipped ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }

    /// Normalized density value of bin `i` (integrates to ~1 over the range
    /// when nothing is clipped).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == self.clipped {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / ((self.total - self.clipped) as f64 * width)
    }

    /// Renders a simple ASCII bar chart, one row per bin.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>10.4} | {}{} {}\n",
                self.bin_center(i),
                "#".repeat(bar),
                " ".repeat(width - bar),
                c
            ));
        }
        out
    }
}

/// Gaussian kernel density estimate with Silverman's rule-of-thumb
/// bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE to `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn fit(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "KDE of empty sample");
        let n = xs.len() as f64;
        let sd = summary::std_dev(xs);
        let iqr = if xs.len() >= 4 {
            summary::iqr(xs)
        } else {
            sd * 1.34
        };
        let spread = if iqr > 0.0 { sd.min(iqr / 1.34) } else { sd };
        // Silverman's rule; fall back to a nominal width for degenerate data.
        let bandwidth = if spread > 0.0 {
            0.9 * spread * n.powf(-0.2)
        } else {
            1e-3
        };
        Kde {
            samples: xs.to_vec(),
            bandwidth,
        }
    }

    /// Evaluates the estimated density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let n = self.samples.len() as f64;
        let norm = 1.0 / (n * h * (2.0 * std::f64::consts::PI).sqrt());
        self.samples
            .iter()
            .map(|&s| {
                let z = (x - s) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluates the density on an evenly spaced grid of `points` samples
    /// over `[lo, hi]`, returning `(x, density)` pairs.
    pub fn grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "grid needs at least two points");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.density(x))
            })
            .collect()
    }

    /// The fitted bandwidth.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Finds the deepest local minimum of the density between `lo` and `hi`
    /// — used to locate the trough between the stable and unstable peaks in
    /// the Figure 8 reproduction. Returns `None` if the density is monotone
    /// on the interval.
    pub fn trough(&self, lo: f64, hi: f64, points: usize) -> Option<f64> {
        let g = self.grid(lo, hi, points);
        let mut best: Option<(f64, f64)> = None;
        for w in g.windows(3) {
            let (x, d) = w[1];
            if d < w[0].1 && d < w[2].1 {
                match best {
                    Some((_, bd)) if bd <= d => {}
                    _ => best = Some((x, d)),
                }
            }
        }
        best.map(|(x, _)| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};
    use crate::rng::Rng;

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // All in [0, 9.9].
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.clipped(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 100);
        let total_density: f64 = (0..10).map(|i| h.density(i)).sum::<f64>();
        assert!((total_density - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_clips_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(f64::NAN);
        h.push(0.5);
        assert_eq!(h.clipped(), 3);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_boundary_goes_to_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(1.0);
        assert_eq!(h.counts()[3], 1);
    }

    #[test]
    fn kde_integrates_to_one() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut Rng::seed_from(5), 500);
        let kde = Kde::fit(&xs);
        let grid = kde.grid(-6.0, 6.0, 600);
        let step = 12.0 / 599.0;
        let integral: f64 = grid.iter().map(|&(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn kde_peaks_near_mode() {
        let d = Normal::new(3.0, 0.5).unwrap();
        let xs = d.sample_n(&mut Rng::seed_from(6), 1_000);
        let kde = Kde::fit(&xs);
        assert!(kde.density(3.0) > kde.density(1.0));
        assert!(kde.density(3.0) > kde.density(5.0));
    }

    #[test]
    fn trough_found_between_bimodal_peaks() {
        let a = Normal::new(0.1, 0.03).unwrap();
        let b = Normal::new(0.8, 0.1).unwrap();
        let mut rng = Rng::seed_from(7);
        let mut xs = a.sample_n(&mut rng, 600);
        xs.extend(b.sample_n(&mut rng, 400));
        let kde = Kde::fit(&xs);
        let trough = kde.trough(0.0, 1.2, 400).expect("bimodal data has trough");
        assert!(
            (0.15..0.75).contains(&trough),
            "trough {trough} not between peaks"
        );
    }

    #[test]
    fn trough_none_for_unimodal() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let xs = d.sample_n(&mut Rng::seed_from(8), 2_000);
        let kde = Kde::fit(&xs);
        // Evaluate on a coarse grid within one sigma: monotone around mode
        // still yields either none or a shallow artifact; accept none or a
        // value far from the mode.
        if let Some(t) = kde.trough(-0.4, 0.4, 50) {
            assert!(kde.density(t) > 0.5 * kde.density(0.0));
        }
    }

    #[test]
    fn ascii_render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..20 {
            h.push(i as f64 / 20.0);
        }
        let s = h.ascii(30);
        assert_eq!(s.lines().count(), 5);
    }
}
