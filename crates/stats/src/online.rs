//! Online (streaming) statistics accumulators.
//!
//! The longitudinal-study driver processes millions of simulated samples;
//! Welford's algorithm lets it track mean/variance/min/max in O(1) memory
//! with good numerical behaviour.

/// Welford online mean/variance accumulator with min/max tracking.
///
/// # Examples
///
/// ```
/// use tuna_stats::online::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// assert!((w.variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// Uses the Chan et al. pairwise update, so merging partial accumulators
    /// yields the same moments as a single sequential pass.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation; `0.0` when the mean is zero.
    pub fn cov(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            (self.std_dev() / self.mean()).abs()
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Relative range `(max - min)/mean`; `0.0` when undefined.
    pub fn relative_range(&self) -> f64 {
        if self.count < 2 || self.mean() == 0.0 {
            return 0.0;
        }
        ((self.max - self.min) / self.mean()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::summary;

    #[test]
    fn matches_batch_statistics() {
        let mut rng = Rng::seed_from(77);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.next_f64() * 100.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - summary::mean(&xs)).abs() < 1e-9);
        assert!((w.variance() - summary::variance(&xs)).abs() < 1e-6);
        assert_eq!(w.min().unwrap(), summary::min(&xs).unwrap());
        assert_eq!(w.max().unwrap(), summary::max(&xs).unwrap());
        assert!((w.relative_range() - summary::relative_range(&xs)).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = Rng::seed_from(78);
        let xs: Vec<f64> = (0..1_000).map(|_| rng.next_gaussian()).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.cov(), 0.0);
    }
}
