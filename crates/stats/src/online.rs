//! Online (streaming) statistics accumulators.
//!
//! The longitudinal-study driver processes millions of simulated samples;
//! Welford's algorithm lets it track mean/variance/min/max in O(1) memory
//! with good numerical behaviour.

/// Welford online mean/variance accumulator with min/max tracking.
///
/// # Examples
///
/// ```
/// use tuna_stats::online::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 3);
/// assert!((w.mean() - 4.0).abs() < 1e-12);
/// assert!((w.variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel reduction).
    ///
    /// Uses the Chan et al. pairwise update, so merging partial accumulators
    /// yields the same moments as a single sequential pass.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `0.0` when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation; `0.0` when the mean is zero.
    pub fn cov(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            (self.std_dev() / self.mean()).abs()
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Relative range `(max - min)/mean`; `0.0` when undefined.
    pub fn relative_range(&self) -> f64 {
        if self.count < 2 || self.mean() == 0.0 {
            return 0.0;
        }
        ((self.max - self.min) / self.mean()).abs()
    }
}

/// P²-style online quantile estimator (Jain & Chlamtac, 1985).
///
/// Tracks one quantile level in O(1) memory with five markers whose
/// heights are adjusted by a piecewise-parabolic prediction as
/// observations stream in. The estimate is approximate (it converges to
/// the true quantile for smooth distributions; differential tests pin it
/// within a few percent of the sort-based oracle), which is the right
/// trade for streaming hot paths that cannot afford to retain windows.
///
/// For fewer than five observations the estimator is exact: it holds the
/// observations and interpolates exactly like
/// [`crate::summary::quantile`].
///
/// # Examples
///
/// ```
/// use tuna_stats::online::P2Quantile;
/// use tuna_stats::rng::Rng;
/// let mut p95 = P2Quantile::new(0.95);
/// let mut rng = Rng::seed_from(7);
/// for _ in 0..10_000 {
///     p95.push(rng.next_f64());
/// }
/// assert!((p95.value() - 0.95).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (first `count` hold raw observations while warming
    /// up; sorted ascending once `count >= 5`).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    nd: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile level `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "quantile level {p} outside [0,1]");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            nd: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            count: 0,
        }
    }

    /// The tracked quantile level.
    pub fn level(&self) -> f64 {
        self.p
    }

    /// Number of accepted (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    ///
    /// Non-finite observations (NaN, ±∞) are rejected: they carry no
    /// quantile information, would poison the marker invariants (`NaN`
    /// breaks the cell search's ordering, infinities collapse the
    /// parabolic prediction), and a streaming estimator fed from noisy
    /// telemetry must not fall over on one bad sample. Rejected values do
    /// not advance [`P2Quantile::count`].
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_unstable_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        self.count += 1;

        // Locate the cell and clamp the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.q[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        let inc = [0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0];
        for (nd, step) in self.nd.iter_mut().zip(inc) {
            *nd += step;
        }

        // Adjust the three interior markers toward their desired
        // positions with the piecewise-parabolic (P²) prediction, falling
        // back to linear when the parabola overshoots a neighbor.
        for i in 1..4 {
            let d = self.nd[i] - self.n[i];
            let room_right = self.n[i + 1] - self.n[i];
            let room_left = self.n[i - 1] - self.n[i];
            if (d >= 1.0 && room_right > 1.0) || (d <= -1.0 && room_left < -1.0) {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate.
    ///
    /// Exact (interpolated order statistic) below five observations; the
    /// P² marker height afterwards — except at the extreme levels
    /// `p = 0.0` and `p = 1.0`, which are *always* exact: the outermost
    /// markers track the running min/max, so returning them pins the
    /// estimator to the sort-based oracle instead of letting an interior
    /// marker drift near (but not onto) the extremum.
    ///
    /// # Panics
    ///
    /// Panics if no (finite) observations have been pushed.
    pub fn value(&self) -> f64 {
        assert!(self.count > 0, "quantile of empty stream");
        if self.count < 5 {
            let mut head = [0.0; 5];
            let m = self.count as usize;
            head[..m].copy_from_slice(&self.q[..m]);
            head[..m].sort_unstable_by(|a, b| a.total_cmp(b));
            crate::summary::quantile_of_sorted(&head[..m], self.p)
        } else if self.p == 0.0 {
            self.q[0]
        } else if self.p == 1.0 {
            self.q[4]
        } else {
            self.q[2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::summary;

    #[test]
    fn matches_batch_statistics() {
        let mut rng = Rng::seed_from(77);
        let xs: Vec<f64> = (0..5_000).map(|_| rng.next_f64() * 100.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - summary::mean(&xs)).abs() < 1e-9);
        assert!((w.variance() - summary::variance(&xs)).abs() < 1e-6);
        assert_eq!(w.min().unwrap(), summary::min(&xs).unwrap());
        assert_eq!(w.max().unwrap(), summary::max(&xs).unwrap());
        assert!((w.relative_range() - summary::relative_range(&xs)).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut rng = Rng::seed_from(78);
        let xs: Vec<f64> = (0..1_000).map(|_| rng.next_gaussian()).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..300] {
            left.push(x);
        }
        for &x in &xs[300..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
        assert_eq!(w.cov(), 0.0);
    }

    #[test]
    fn p2_exact_below_five_observations() {
        let xs = [5.0, 1.0, 3.0, 2.0];
        for n in 1..=xs.len() {
            let mut p2 = P2Quantile::new(0.5);
            for &x in &xs[..n] {
                p2.push(x);
            }
            assert_eq!(p2.value(), summary::median(&xs[..n]), "n = {n}");
            assert_eq!(p2.count(), n as u64);
        }
    }

    #[test]
    fn p2_tracks_uniform_quantiles() {
        for &level in &[0.1, 0.5, 0.9, 0.95] {
            let mut p2 = P2Quantile::new(level);
            let mut rng = Rng::seed_from(11);
            for _ in 0..50_000 {
                p2.push(rng.next_f64());
            }
            assert!(
                (p2.value() - level).abs() < 0.01,
                "level {level}: estimate {}",
                p2.value()
            );
        }
    }

    #[test]
    fn p2_close_to_batch_quantile_on_gaussian() {
        let mut rng = Rng::seed_from(12);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| rng.next_gaussian() * 3.0 + 10.0)
            .collect();
        let mut p2 = P2Quantile::new(0.95);
        for &x in &xs {
            p2.push(x);
        }
        let exact = summary::quantile(&xs, 0.95);
        assert!(
            (p2.value() - exact).abs() < 0.15,
            "p2 {} vs exact {exact}",
            p2.value()
        );
    }

    #[test]
    fn p2_constant_stream_is_exact() {
        let mut p2 = P2Quantile::new(0.75);
        for _ in 0..1_000 {
            p2.push(42.0);
        }
        assert_eq!(p2.value(), 42.0);
    }

    #[test]
    fn p2_rejects_non_finite_observations() {
        let mut with_noise = P2Quantile::new(0.5);
        let mut clean = P2Quantile::new(0.5);
        let mut rng = Rng::seed_from(5);
        for i in 0..1_000 {
            let x = rng.next_gaussian();
            with_noise.push(x);
            clean.push(x);
            if i % 7 == 0 {
                with_noise.push(f64::NAN);
                with_noise.push(f64::INFINITY);
                with_noise.push(f64::NEG_INFINITY);
            }
        }
        assert_eq!(with_noise.count(), clean.count());
        assert_eq!(with_noise.value().to_bits(), clean.value().to_bits());
    }

    #[test]
    fn p2_extreme_levels_track_exact_min_max() {
        let mut p0 = P2Quantile::new(0.0);
        let mut p1 = P2Quantile::new(1.0);
        let mut rng = Rng::seed_from(6);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.next_gaussian() * 5.0).collect();
        for &x in &xs {
            p0.push(x);
            p1.push(x);
        }
        assert_eq!(p0.value(), summary::min(&xs).unwrap());
        assert_eq!(p1.value(), summary::max(&xs).unwrap());
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn p2_empty_panics() {
        P2Quantile::new(0.5).value();
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn p2_all_rejected_is_still_empty() {
        let mut p2 = P2Quantile::new(0.5);
        p2.push(f64::NAN);
        p2.push(f64::INFINITY);
        assert_eq!(p2.count(), 0);
        p2.value();
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn p2_rejects_bad_level() {
        P2Quantile::new(1.5);
    }
}
