//! Correlation measures.
//!
//! The paper's §3.2.1 investigation "thoroughly investigated system
//! performance metrics ... revealed no obvious correlations"; our
//! reproduction of that analysis uses these estimators.
//!
//! [`pearson`] runs as a **single streaming pass** (Welford-style
//! co-moment updates) instead of the old mean-then-comoment double pass;
//! the differential suite pins it within 1e-12 of the retained
//! [`naive::pearson`] oracle. [`spearman_with`] ranks through a reusable
//! [`RankScratch`] so repeated correlation sweeps allocate nothing.

/// Reference implementations retained as differential-test oracles.
pub mod naive {
    /// Two-pass Pearson correlation (the pre-streaming implementation of
    /// [`super::pearson`]).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "length mismatch");
        let n = xs.len();
        if n < 2 {
            return 0.0;
        }
        let mx = xs.iter().sum::<f64>() / n as f64;
        let my = ys.iter().sum::<f64>() / n as f64;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mx;
            let dy = y - my;
            sxy += dx * dy;
            sxx += dx * dx;
            syy += dy * dy;
        }
        if sxx == 0.0 || syy == 0.0 {
            return 0.0;
        }
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

/// Pearson product-moment correlation of two equal-length slices,
/// computed in one streaming pass (Welford-style co-moments).
///
/// Returns `0.0` when either input is degenerate (fewer than two points or
/// zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mut mx = 0.0;
    let mut my = 0.0;
    let mut cxx = 0.0;
    let mut cyy = 0.0;
    let mut cxy = 0.0;
    let mut n = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        n += 1.0;
        let dx = x - mx;
        let dy = y - my;
        mx += dx / n;
        my += dy / n;
        let dy2 = y - my;
        cxx += dx * (x - mx);
        cyy += dy * dy2;
        cxy += dx * dy2;
    }
    if cxx <= 0.0 || cyy <= 0.0 {
        return 0.0;
    }
    cxy / (cxx.sqrt() * cyy.sqrt())
}

/// Reusable buffers for rank transforms — repeated [`spearman_with`]
/// sweeps (e.g. the §3.2.1 metric-correlation matrix) allocate nothing
/// once warmed up.
#[derive(Debug, Default, Clone)]
pub struct RankScratch {
    idx: Vec<usize>,
    rx: Vec<f64>,
    ry: Vec<f64>,
}

/// Spearman rank correlation (Pearson over mid-ranks, ties averaged).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    spearman_with(xs, ys, &mut RankScratch::default())
}

/// Spearman rank correlation with caller-owned scratch buffers.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman_with(xs: &[f64], ys: &[f64], scratch: &mut RankScratch) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let RankScratch { idx, rx, ry } = scratch;
    ranks_into(xs, idx, rx);
    ranks_into(ys, idx, ry);
    pearson(rx, ry)
}

/// Mid-rank transform (ties get the average of their rank positions).
#[cfg(test)]
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx = Vec::new();
    let mut out = Vec::new();
    ranks_into(xs, &mut idx, &mut out);
    out
}

/// Mid-rank transform into caller-owned buffers.
fn ranks_into(xs: &[f64], idx: &mut Vec<usize>, out: &mut Vec<f64>) {
    let n = xs.len();
    idx.clear();
    idx.extend(0..n);
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    out.clear();
    out.resize(n, 0.0);
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn streaming_matches_naive_oracle() {
        let xs = [10.5, -3.0, 7.25, 100.0, 0.0, 55.5, 2.0];
        let ys = [1.0, 2.5, -7.0, 40.0, 3.0, 3.0, -1.0];
        for n in 0..=xs.len() {
            let fast = pearson(&xs[..n], &ys[..n]);
            let slow = naive::pearson(&xs[..n], &ys[..n]);
            assert!((fast - slow).abs() < 1e-12, "n = {n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn ties_get_mid_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_scratch_reuse_is_identical() {
        let xs = [1.0, 5.0, 2.0, 8.0];
        let ys = [2.0, 3.0, 9.0, 1.0];
        let mut scratch = RankScratch::default();
        let a = spearman_with(&xs, &ys, &mut scratch);
        // Warm scratch with different-length input, then redo.
        let _ = spearman_with(&xs[..2], &ys[..2], &mut scratch);
        let b = spearman_with(&xs, &ys, &mut scratch);
        assert_eq!(a, b);
        assert_eq!(a, spearman(&xs, &ys));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
