//! Correlation measures.
//!
//! The paper's §3.2.1 investigation "thoroughly investigated system
//! performance metrics ... revealed no obvious correlations"; our
//! reproduction of that analysis uses these estimators.

/// Pearson product-moment correlation of two equal-length slices.
///
/// Returns `0.0` when either input is degenerate (fewer than two points or
/// zero variance).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation (Pearson over mid-ranks, ties averaged).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Mid-rank transform (ties get the average of their rank positions).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn ties_get_mid_ranks() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}
