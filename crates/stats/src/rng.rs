//! Deterministic pseudo-random number generation.
//!
//! The whole workspace must be reproducible from a single `u64` seed, so we
//! hand-roll a small, fast generator rather than depending on the exact
//! stream of a third-party crate: [`Rng`] is xoshiro256++ seeded through
//! SplitMix64, the construction recommended by the xoshiro authors.
//!
//! Two extra facilities matter for the simulator:
//!
//! - [`Rng::fork`] derives an independent child generator from a label, so
//!   concurrent simulation entities (machines, workers, tuning runs) each own
//!   a decorrelated stream while remaining a pure function of the root seed.
//! - [`hash64`] / [`hash_combine`] provide stateless, deterministic draws
//!   keyed by simulation identities (e.g. "does machine M pick the bad query
//!   plan for config C?"), which must not depend on sampling order.

/// SplitMix64 step; also used as a general-purpose 64-bit mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a single `u64` into a well-distributed hash value.
///
/// This is the finalizer of SplitMix64 and passes standard avalanche tests;
/// it is used for stateless deterministic decisions keyed on simulation
/// identities.
///
/// # Examples
///
/// ```
/// use tuna_stats::rng::hash64;
/// assert_ne!(hash64(1), hash64(2));
/// assert_eq!(hash64(7), hash64(7));
/// ```
#[inline]
pub fn hash64(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Combines two hash values into one, order-sensitively.
///
/// # Examples
///
/// ```
/// use tuna_stats::rng::hash_combine;
/// assert_ne!(hash_combine(1, 2), hash_combine(2, 1));
/// ```
#[inline]
pub fn hash_combine(a: u64, b: u64) -> u64 {
    hash64(a ^ b.rotate_left(32).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Converts a 64-bit draw to a `f64` uniformly distributed in `[0, 1)`.
#[inline]
pub fn u64_to_unit_f64(x: u64) -> f64 {
    // Use the top 53 bits for a uniformly spaced double in [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// xoshiro256++ pseudo-random number generator.
///
/// Deterministic, fast (sub-nanosecond per draw), with a 2^256 - 1 period.
/// Not cryptographically secure — this is a simulation RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The internal 256-bit state is expanded from the seed with SplitMix64
    /// as recommended by the xoshiro reference implementation.
    ///
    /// # Examples
    ///
    /// ```
    /// use tuna_stats::rng::Rng;
    /// let mut a = Rng::seed_from(7);
    /// let mut b = Rng::seed_from(7);
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Derives an independent child generator keyed by `label`.
    ///
    /// Forking does not advance `self`, so the set of children is a pure
    /// function of the parent state and the labels used.
    ///
    /// # Examples
    ///
    /// ```
    /// use tuna_stats::rng::Rng;
    /// let root = Rng::seed_from(1);
    /// let mut a = root.fork(0);
    /// let mut b = root.fork(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn fork(&self, label: u64) -> Self {
        let mixed = hash_combine(self.s[0] ^ self.s[2], hash64(label));
        Rng::seed_from(hash_combine(mixed, self.s[1] ^ self.s[3].rotate_left(17)))
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        u64_to_unit_f64(self.next_u64())
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive bounds).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "invalid range: {lo} > {hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.bounded_u64(span)) as i64
    }

    /// Returns a uniform `usize` in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.bounded_u64(n as u64) as usize
    }

    /// Unbiased bounded draw in `[0, bound)` via multiply-shift rejection.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `xs`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (a uniform k-subset).
    ///
    /// Uses Floyd's algorithm; the returned order is randomized.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }

    /// Standard normal draw via the polar Box–Muller method.
    pub fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should diverge, {same} collisions");
    }

    #[test]
    fn fork_is_pure_and_decorrelated() {
        let root = Rng::seed_from(42);
        let mut c1 = root.fork(7);
        let mut c1_again = root.fork(7);
        let mut c2 = root.fork(8);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = Rng::seed_from(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_f64_mean_near_half() {
        let mut rng = Rng::seed_from(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_roughly() {
        let mut rng = Rng::seed_from(9);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn range_i64_inclusive() {
        let mut rng = Rng::seed_from(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2_000 {
            let x = rng.range_i64(-3, 3);
            assert!((-3..=3).contains(&x));
            saw_lo |= x == -3;
            saw_hi |= x == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from(11);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from(17);
        for _ in 0..200 {
            let k = rng.below(10) + 1;
            let picks = rng.sample_indices(20, k);
            assert_eq!(picks.len(), k);
            let mut sorted = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "duplicates in {picks:?}");
            assert!(picks.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::seed_from(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn hash64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let h0 = hash64(0xDEADBEEF);
        let h1 = hash64(0xDEADBEEF ^ 1);
        let flipped = (h0 ^ h1).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped}");
    }
}
