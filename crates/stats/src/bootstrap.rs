//! Percentile bootstrap confidence intervals.
//!
//! Figure 2 of the paper shades the 99% confidence interval of the
//! best-so-far tuning curve across 100 runs; we reproduce that band with a
//! nonparametric percentile bootstrap of the mean.

use crate::rng::Rng;
use crate::summary::{mean, quantile_of_sorted};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Point estimate (the statistic on the original sample).
    pub point: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Percentile-bootstrap confidence interval for the mean of `xs`.
///
/// `level` is the two-sided confidence level (e.g. `0.99`), `resamples` the
/// number of bootstrap replicates.
///
/// # Panics
///
/// Panics if `xs` is empty, `resamples == 0`, or `level` is outside `(0,1)`.
///
/// # Examples
///
/// ```
/// use tuna_stats::bootstrap::bootstrap_mean_ci;
/// use tuna_stats::rng::Rng;
/// let xs = vec![9.0, 10.0, 11.0, 10.5, 9.5];
/// let ci = bootstrap_mean_ci(&xs, 0.95, 500, &mut Rng::seed_from(1));
/// assert!(ci.lo <= ci.point && ci.point <= ci.hi);
/// ```
pub fn bootstrap_mean_ci(
    xs: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut Rng,
) -> ConfidenceInterval {
    bootstrap_ci(xs, level, resamples, rng, mean)
}

/// Percentile-bootstrap confidence interval for an arbitrary statistic.
///
/// # Panics
///
/// Panics if `xs` is empty, `resamples == 0`, or `level` is outside `(0,1)`.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut Rng,
    statistic: F,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    assert!(!xs.is_empty(), "bootstrap of empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(level > 0.0 && level < 1.0, "level {level} outside (0,1)");

    let point = statistic(xs);
    let mut replicates = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.below(xs.len())];
        }
        replicates.push(statistic(&buf));
    }
    // One sort serves both tails (the old path re-sorted a clone of the
    // replicate vector per quantile); values are bit-identical.
    replicates.sort_unstable_by(|a, b| a.total_cmp(b));
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        lo: quantile_of_sorted(&replicates, alpha),
        point,
        hi: quantile_of_sorted(&replicates, 1.0 - alpha),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Distribution, Normal};

    #[test]
    fn ci_brackets_true_mean_usually() {
        let d = Normal::new(50.0, 5.0).unwrap();
        let mut rng = Rng::seed_from(100);
        let mut covered = 0;
        let trials = 100;
        for _ in 0..trials {
            let xs = d.sample_n(&mut rng, 50);
            let ci = bootstrap_mean_ci(&xs, 0.95, 300, &mut rng);
            if ci.lo <= 50.0 && 50.0 <= ci.hi {
                covered += 1;
            }
        }
        // Nominal coverage is 95%; allow generous slack for bootstrap error.
        assert!(covered >= 85, "covered only {covered}/{trials}");
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let mut rng = Rng::seed_from(101);
        let xs = d.sample_n(&mut rng, 200);
        let narrow = bootstrap_mean_ci(&xs, 0.80, 500, &mut Rng::seed_from(7));
        let wide = bootstrap_mean_ci(&xs, 0.99, 500, &mut Rng::seed_from(7));
        assert!(wide.hi - wide.lo > narrow.hi - narrow.lo);
    }

    #[test]
    fn point_estimate_is_sample_statistic() {
        let xs = [1.0, 2.0, 3.0];
        let ci = bootstrap_mean_ci(&xs, 0.9, 100, &mut Rng::seed_from(2));
        assert!((ci.point - 2.0).abs() < 1e-12);
    }

    #[test]
    fn custom_statistic() {
        let xs = [1.0, 2.0, 100.0];
        let ci = bootstrap_ci(&xs, 0.9, 200, &mut Rng::seed_from(3), |s| {
            crate::summary::median(s)
        });
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        bootstrap_mean_ci(&[], 0.9, 10, &mut Rng::seed_from(1));
    }
}
