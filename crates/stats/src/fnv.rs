//! Order-sensitive FNV-1a/64 checksums over numeric result streams.
//!
//! Both the perf-gate (`BENCH.json`) and the campaign engine
//! (`campaign.csv`) digest every value a deterministic run produces, so a
//! scenario or a grid cell has exactly one legal checksum per algorithm
//! version; any numeric drift — however small — changes the digest.

/// Order-sensitive FNV-1a/64 accumulator over the values a deterministic
/// run produces. Floats are folded by their IEEE-754 bit pattern, so any
/// numeric drift — however small — changes the checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum {
    /// Creates an accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a string's UTF-8 bytes.
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// Folds a `u64`.
    pub fn push_u64(&mut self, x: u64) {
        self.push_bytes(&x.to_le_bytes());
    }

    /// Folds a float by bit pattern.
    pub fn push_f64(&mut self, x: f64) {
        self.push_u64(x.to_bits());
    }

    /// The digest as a 16-char lowercase hex string.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// The raw 64-bit digest (what [`Checksum::hex`] renders).
    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a of "a" is the classic published test vector.
        let mut c = Checksum::new();
        c.push_bytes(b"a");
        assert_eq!(c.hex(), "af63dc4c8601ec8c");
    }

    #[test]
    fn order_sensitive_and_str_matches_bytes() {
        let mut a = Checksum::new();
        a.push_f64(1.0);
        a.push_f64(2.0);
        let mut b = Checksum::new();
        b.push_f64(2.0);
        b.push_f64(1.0);
        assert_ne!(a.hex(), b.hex());

        let mut s = Checksum::new();
        s.push_str("abc");
        let mut raw = Checksum::new();
        raw.push_bytes(b"abc");
        assert_eq!(s.hex(), raw.hex());
    }
}
