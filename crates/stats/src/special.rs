//! Special functions for the Gaussian family.
//!
//! The expected-improvement acquisition function and the GP optimizer need
//! the standard-normal PDF/CDF; we implement `erf` with the
//! Abramowitz–Stegun 7.1.26 rational approximation (|error| < 1.5e-7, ample
//! for acquisition ranking) and the quantile with Acklam's algorithm.

/// Error function approximation (Abramowitz & Stegun 7.1.26).
///
/// Maximum absolute error ~1.5e-7 over the real line.
///
/// # Examples
///
/// ```
/// use tuna_stats::special::erf;
/// assert!(erf(0.0).abs() < 1e-6);
/// assert!((erf(1.0) - 0.8427).abs() < 1e-3);
/// assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Standard normal cumulative distribution function.
///
/// # Examples
///
/// ```
/// use tuna_stats::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(normal_cdf(5.0) > 0.999);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF) via Acklam's algorithm.
///
/// Relative error below 1.15e-9 on `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile level {p} outside (0,1)");

    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_9,
        -275.928_510_446_969_,
        138.357_751_867_269_2,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        let table = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ];
        for (x, want) in table {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-6, "erf(-{x})");
        }
    }

    #[test]
    fn cdf_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cdf_monotone() {
        let mut prev = normal_cdf(-6.0);
        let mut x = -6.0;
        while x <= 6.0 {
            let c = normal_cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
            x += 0.05;
        }
    }

    #[test]
    fn pdf_peak_at_zero() {
        assert!(normal_pdf(0.0) > normal_pdf(0.1));
        assert!((normal_pdf(0.0) - 0.3989423).abs() < 1e-6);
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for p in [0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p={p}, x={x}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }
}
