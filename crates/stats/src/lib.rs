//! Statistical foundation for the TUNA reproduction.
//!
//! This crate provides every statistical primitive the rest of the
//! workspace builds on:
//!
//! - [`rng`]: a deterministic, fork-able pseudo-random number generator
//!   (xoshiro256++ seeded via SplitMix64) so that every experiment in the
//!   repository is reproducible bit-for-bit from a single `u64` seed.
//! - [`dist`]: sampling distributions (normal, log-normal, Zipf, Pareto, ...)
//!   used by the cloud simulator and the workload models.
//! - [`online`]: Welford-style online accumulators for streaming mean /
//!   variance and min/max tracking, plus the P²-style
//!   [`online::P2Quantile`] streaming quantile estimator.
//! - [`summary`]: batch statistics over slices — mean, variance, quantiles,
//!   coefficient of variation and the paper's *relative range* heuristic.
//!   Order statistics run by selection with reusable scratch buffers; the
//!   pre-streaming sort-based code is retained in [`summary::naive`] as a
//!   differential-test oracle.
//! - [`bootstrap`]: percentile bootstrap confidence intervals.
//! - [`hist`]: histograms and Gaussian kernel density estimates (used to
//!   regenerate the Figure 8 density plot).
//! - [`special`]: special functions (`erf`, normal CDF/PDF/quantile) needed
//!   by the expected-improvement acquisition function.
//! - [`scaler`]: per-column standardization for ML pipelines.
//! - [`ar1`]: first-order autoregressive processes modelling temporally
//!   correlated cloud interference ("noisy neighbors").
//! - [`corr`]: Pearson / Spearman correlation.
//! - [`fnv`]: order-sensitive FNV-1a checksums used by the perf-gate and
//!   the campaign engine to pin deterministic results bit-for-bit.
//! - [`json`]: the shared hand-rolled JSON writer/parser (the workspace
//!   builds offline, so every JSON surface — campaign stores,
//!   `BENCH.json`, the serve wire protocol — goes through this one
//!   module).
//!
//! # Examples
//!
//! ```
//! use tuna_stats::rng::Rng;
//! use tuna_stats::dist::{Distribution, Normal};
//! use tuna_stats::summary::relative_range;
//!
//! let mut rng = Rng::seed_from(42);
//! let noise = Normal::new(1.0, 0.05).unwrap();
//! let samples: Vec<f64> = (0..100).map(|_| noise.sample(&mut rng)).collect();
//! assert!(relative_range(&samples) < 0.8);
//! ```

pub mod ar1;
pub mod bootstrap;
pub mod corr;
pub mod dist;
pub mod fnv;
pub mod hist;
pub mod json;
pub mod online;
pub mod rng;
pub mod scaler;
pub mod special;
pub mod summary;

pub use dist::Distribution;
pub use online::{P2Quantile, Welford};
pub use rng::Rng;
pub use summary::{coefficient_of_variation, mean, quantile, relative_range, std_dev};

#[cfg(test)]
mod smoke {
    use crate::{mean, std_dev, Rng, Welford};

    #[test]
    fn rng_fork_streams_are_deterministic_and_distinct() {
        let root = Rng::seed_from(42);
        let mut a = root.fork(1);
        let mut b = root.fork(1);
        let mut c = root.fork(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb, "same fork label must replay the same stream");
        assert_ne!(xa, xc, "different fork labels must diverge");
    }

    #[test]
    fn welford_agrees_with_batch_summary() {
        let mut rng = Rng::seed_from(3);
        let xs: Vec<f64> = (0..500).map(|_| rng.next_gaussian()).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-9);
        assert!((w.variance().sqrt() - std_dev(&xs)).abs() < 1e-9);
    }
}
