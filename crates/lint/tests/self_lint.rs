//! The lint engine must pass its own lints: `crates/lint` is scanned
//! with the same builtin registry it ships (fixtures/ is excluded by
//! the walker — those files are seeded violations by design).

use std::path::Path;

use tuna_lint::Engine;

#[test]
fn lint_crate_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = Engine::builtin()
        .check_tree(root)
        .expect("scan crates/lint");
    assert!(
        report.files_scanned >= 6,
        "walker missed files: {}",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "tuna-lint fails its own lints:\n  {}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}
