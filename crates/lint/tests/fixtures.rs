//! Fixture tests: every rule must catch its seeded violation and pass
//! the clean twin, the comment-stripping regression must stay fixed,
//! and suppression hygiene must be enforced.

use tuna_lint::{Engine, SUPPRESSION_RULE};

/// A production-looking path: not allowlisted, not test code.
const SRC: &str = "crates/demo/src/lib.rs";

fn rules_hit(path: &str, text: &str) -> Vec<String> {
    let mut rules: Vec<String> = Engine::builtin()
        .check_file(path, text)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

#[track_caller]
fn assert_catches(rule: &str, text: &str) {
    let hits = rules_hit(SRC, text);
    assert_eq!(
        hits,
        vec![rule.to_string()],
        "fixture for `{rule}` must trip exactly that rule"
    );
}

#[track_caller]
fn assert_clean(text: &str) {
    let diags = Engine::builtin().check_file(SRC, text);
    assert!(
        diags.is_empty(),
        "clean twin produced diagnostics:\n  {}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}

#[test]
fn wall_clock_positive_negative() {
    assert_catches("wall-clock", include_str!("../fixtures/wall_clock_bad.rs"));
    assert_clean(include_str!("../fixtures/wall_clock_clean.rs"));
}

#[test]
fn obs_two_clock_rule() {
    // Inside crates/obs, wall-clock reads are only legal in wall.rs —
    // the Clock seam's sole implementation file on the allowlist. The
    // same text trips `wall-clock` at any other obs path...
    let bad = include_str!("../fixtures/obs_clock_bad.rs");
    assert_eq!(
        rules_hit("crates/obs/src/journal.rs", bad),
        vec!["wall-clock".to_string()],
        "wall-clock must fire inside crates/obs outside wall.rs"
    );
    // ...and is allowlisted, by exact suffix, only at wall.rs.
    assert!(
        rules_hit("crates/obs/src/wall.rs", bad).is_empty(),
        "crates/obs/src/wall.rs is the one legal wall-clock site in obs"
    );
    assert_eq!(
        rules_hit("crates/obs/src/not_wall.rs", bad),
        vec!["wall-clock".to_string()],
        "the allowlist is a path suffix match on wall.rs, not a pattern"
    );
    // The seamed twin is clean everywhere.
    assert!(rules_hit(
        "crates/obs/src/journal.rs",
        include_str!("../fixtures/obs_clock_clean.rs")
    )
    .is_empty());
    assert_clean(include_str!("../fixtures/obs_clock_clean.rs"));
}

#[test]
fn ambient_randomness_positive_negative() {
    assert_catches(
        "ambient-randomness",
        include_str!("../fixtures/ambient_randomness_bad.rs"),
    );
    assert_clean(include_str!("../fixtures/ambient_randomness_clean.rs"));
}

#[test]
fn unordered_iteration_positive_negative() {
    assert_catches(
        "unordered-iteration",
        include_str!("../fixtures/unordered_iteration_bad.rs"),
    );
    // The clean twin also proves the #[cfg(test)] exemption: it uses a
    // HashSet inside its tests module.
    assert_clean(include_str!("../fixtures/unordered_iteration_clean.rs"));
}

#[test]
fn float_ordering_positive_negative() {
    let bad = include_str!("../fixtures/float_ordering_bad.rs");
    let diags = Engine::builtin().check_file(SRC, bad);
    // Both the single-line and the multi-line (lookahead) form.
    assert_eq!(diags.len(), 2, "expected 2 float-ordering hits: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == "float-ordering"));
    assert_clean(include_str!("../fixtures/float_ordering_clean.rs"));
}

#[test]
fn undocumented_unsafe_positive_negative() {
    assert_catches(
        "undocumented-unsafe",
        include_str!("../fixtures/undocumented_unsafe_bad.rs"),
    );
    assert_clean(include_str!("../fixtures/undocumented_unsafe_clean.rs"));
}

#[test]
fn comment_stripping_regression() {
    let text = include_str!("../fixtures/comment_in_string.rs");
    let diags = Engine::builtin().check_file(SRC, text);
    // Exactly one finding: the violation hidden behind "//" inside a
    // string literal. Pattern text in strings/comments stays silent.
    assert_eq!(diags.len(), 1, "expected 1 diagnostic: {diags:?}");
    assert_eq!(diags[0].rule, "float-ordering");
    let flagged_line = text
        .lines()
        .position(|l| l.contains("example.com"))
        .expect("probe line exists")
        + 1;
    assert_eq!(diags[0].line, flagged_line);
}

#[test]
fn valid_suppressions_silence_and_are_used() {
    assert_clean(include_str!("../fixtures/suppression_ok.rs"));
}

#[test]
fn bad_suppressions_are_violations() {
    let diags = Engine::builtin().check_file(SRC, include_str!("../fixtures/suppression_bad.rs"));
    let sup: Vec<_> = diags
        .iter()
        .filter(|d| d.rule == SUPPRESSION_RULE)
        .collect();
    // Missing justification (x2), unknown rule, unused suppression.
    assert_eq!(sup.len(), 4, "expected 4 suppression findings: {diags:?}");
    // A malformed suppression does not suppress: the wall-clock hits
    // behind the two unjustified markers still fire.
    let wall: Vec<_> = diags.iter().filter(|d| d.rule == "wall-clock").collect();
    assert_eq!(wall.len(), 2, "malformed suppressions must not hide hits");
}

#[test]
fn allowlisted_paths_are_exempt() {
    let text = "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n";
    assert!(Engine::builtin()
        .check_file("crates/bench/src/perf.rs", text)
        .is_empty());
    assert_eq!(rules_hit(SRC, text), vec!["wall-clock".to_string()]);
}

#[test]
fn tests_dirs_are_exempt_for_optouts_only() {
    // HashMap in an integration test: fine (rule opts out of tests).
    let hashmap = "use std::collections::HashMap;\n";
    assert!(Engine::builtin()
        .check_file("crates/demo/tests/it.rs", hashmap)
        .is_empty());
    // Ambient randomness never gets a pass, not even in tests.
    let rng = "pub fn r() { let _ = rand::thread_rng(); }\n";
    assert_eq!(
        rules_hit("crates/demo/tests/it.rs", rng),
        vec!["ambient-randomness".to_string()]
    );
}
