// Clean twin: every unsafe states its invariant, either in the
// comment block directly above (which may run several lines) or
// trailing on the same line.
pub fn read_first(xs: &[u8]) -> u8 {
    // SAFETY: the caller guarantees `xs` is non-empty (checked at the
    // public boundary), so index 0 is in bounds. The extra prose here
    // proves multi-line SAFETY blocks are recognized all the way down
    // to the unsafe token.
    unsafe { *xs.get_unchecked(0) }
}

pub fn read_second(xs: &[u8]) -> u8 {
    unsafe { *xs.get_unchecked(1) } // SAFETY: caller guarantees len >= 2.
}
