// Every suppression here is itself a violation.
use std::time::Instant;

pub fn unjustified() -> Instant {
    // lint:allow(wall-clock)
    Instant::now()
}

pub fn empty_justification() -> Instant {
    // lint:allow(wall-clock):
    Instant::now()
}

pub fn unknown_rule() -> u64 {
    // lint:allow(no-such-rule): confidently wrong
    42
}

pub fn unused() -> u64 {
    // lint:allow(float-ordering): nothing here compares floats at all
    7
}
