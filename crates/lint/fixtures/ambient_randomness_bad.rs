// Seeded violation: ambient (unseeded) randomness.
use std::collections::hash_map::RandomState;

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn state() -> RandomState {
    RandomState::new()
}
