// Seeded violation: std hash collections in production code.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_default() += 1;
    }
    seen.len() + counts.len()
}
