// Seeded violation: wall-clock reads in a deterministic path.
use std::time::{Instant, SystemTime};

pub fn elapsed_seed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn epoch_seed() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs()
}
