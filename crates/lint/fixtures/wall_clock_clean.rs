// Clean twin: time flows through a caller-supplied tick counter, and
// wall-clock identifiers appear only in comments ("Instant::now") and
// strings — neither may trip the rule.
pub fn elapsed_ticks(now_ticks: u64, started_ticks: u64) -> u64 {
    let banner = "no Instant::now or SystemTime::now here";
    let _ = banner;
    now_ticks - started_ticks
}
