// Clean twin of the obs two-clock fixture: telemetry takes time only
// through a caller-supplied clock seam, so the same code renders
// byte-identically under a tick clock and carries real durations under
// the (allowlisted, wall.rs-only) wall clock.
pub trait Clock {
    fn now(&self) -> u64;
}

pub struct SeamedJournal<C: Clock> {
    clock: C,
}

impl<C: Clock> SeamedJournal<C> {
    pub fn stamp(&self) -> u64 {
        self.clock.now()
    }
}
