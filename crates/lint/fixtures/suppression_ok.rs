// Valid suppressions: justified, matching a real diagnostic — one as
// a standalone comment (with a wrapped justification) and one
// trailing on the flagged line.
use std::time::Instant;

pub fn progress_stamp() -> Instant {
    // lint:allow(wall-clock): progress display only; the value is
    // printed and never reaches a result or checksum.
    Instant::now()
}

pub fn another_stamp() -> Instant {
    Instant::now() // lint:allow(wall-clock): display only.
}
