// Seeded violation: unsafe without a SAFETY: comment. The comment
// directly above this block explains nothing about soundness.
pub fn read_first(xs: &[u8]) -> u8 {
    // Fast path for hot loops.
    unsafe { *xs.get_unchecked(0) }
}
