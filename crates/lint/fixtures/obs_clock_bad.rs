// Seeded violation of the obs two-clock rule: telemetry code reading
// real time directly instead of taking it through the `Clock` seam.
// Checked against a `crates/obs/src/...` path that is NOT the
// allowlisted wall.rs — the rule must still fire there.
use std::time::Instant;

pub struct EagerJournal {
    origin: Instant,
}

impl EagerJournal {
    pub fn stamp(&self) -> u64 {
        // A journal stamping itself from the wall clock renders
        // differently every run — exactly what the seam prevents.
        self.origin.elapsed().as_nanos() as u64
    }

    pub fn event_at_now(&self) -> u64 {
        Instant::now().elapsed().as_nanos() as u64
    }
}
