// Regression fixture for the comment-stripping bug inherited from
// tests/float_ordering_lint.rs: that lint stripped everything after
// the first `//` on a line, so a string literal containing slashes hid
// any violation to its right — and pattern text inside strings or
// comments was matched as if it were code. Four probes:
//
// 1. A real violation AFTER a `//` inside a string: must be caught.
pub fn hidden_violation(a: f64, b: f64) -> std::cmp::Ordering {
    let url = "http://example.com/metrics"; a.partial_cmp(&b).unwrap()
}

// 2. Pattern text inside a plain string: must NOT be flagged.
pub fn pattern_in_string() -> &'static str {
    "Instant::now HashMap thread_rng unsafe partial_cmp(x).unwrap()"
}

// 3. Pattern text inside a raw string with quotes: must NOT be flagged.
pub fn pattern_in_raw_string() -> &'static str {
    r#"SystemTime::now() says "HashSet" and RandomState"#
}

// 4. Pattern text in comments only: must NOT be flagged.
// Instant::now() HashMap::new() a.partial_cmp(&b).unwrap() unsafe
pub fn clean() {}
