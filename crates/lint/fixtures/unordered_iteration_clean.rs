// Clean twin: ordered collections in production code; hash
// collections only inside the #[cfg(test)] module, which is exempt.
use std::collections::{BTreeMap, BTreeSet};

pub fn tally(xs: &[u32]) -> usize {
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        seen.insert(x);
        *counts.entry(x).or_default() += 1;
    }
    seen.len() + counts.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn membership_assertions_may_hash() {
        let s: HashSet<u32> = [1, 2, 3].into_iter().collect();
        assert!(s.contains(&2));
    }
}
