// Seeded violation: panicking float comparison, including the
// multi-line form the lookahead window must catch.
pub fn sort_costs(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn max_cost(xs: &[f64]) -> f64 {
    xs.iter()
        .copied()
        .max_by(|a, b| {
            a.partial_cmp(b)
                .expect("costs must be comparable")
        })
        .unwrap_or(0.0)
}
