// Clean twin: total_cmp ranks NaN instead of panicking. A
// partial_cmp whose result is handled (no unwrap/expect) is fine too.
pub fn sort_costs(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn lt(a: f64, b: f64) -> bool {
    matches!(a.partial_cmp(&b), Some(std::cmp::Ordering::Less))
}
