// Clean twin: all randomness forks from a seeded stream.
pub fn roll(rng: &mut tuna_stats::Rng) -> u64 {
    rng.next_u64()
}
