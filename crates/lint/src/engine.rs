//! The analysis engine: walks a source tree, applies the rule
//! registry to each file's code view, and resolves suppressions.
//!
//! Three frontends drive this one core: the `tuna-lint` binary, the
//! `tests/source_lints.rs` harness (so `cargo test` fails on any
//! diagnostic), and the CI `lints` job.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{self, Rule};
use crate::scan::{scan, Comment};

/// Rule id under which suppression-hygiene diagnostics are reported.
/// Not a real registry rule: suppressions cannot suppress themselves.
pub const SUPPRESSION_RULE: &str = "suppression";

const SUPPRESSION_HELP: &str = "write `// lint:allow(<rule>): <justification>`; \
     the justification is mandatory and the suppression must actually hit";

/// One finding, ready to print.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (or [`SUPPRESSION_RULE`]).
    pub rule: String,
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// What to do instead.
    pub help: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a tree scan.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of `.rs` files analyzed.
    pub files_scanned: usize,
    /// All diagnostics, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

/// Per-file context handed to rule matchers.
pub struct FileView<'a> {
    /// Path relative to the scanned root, `/`-separated.
    pub rel_path: &'a str,
    /// The blanked code view, split into lines.
    pub code_lines: Vec<&'a str>,
    comment_by_line: BTreeMap<usize, String>,
}

impl FileView<'_> {
    /// Comment text on `line` (1-based), if any; a line carrying
    /// several comments gets them joined with a space.
    pub fn comment_at(&self, line: usize) -> Option<&str> {
        self.comment_by_line.get(&line).map(String::as_str)
    }
}

/// Whether `rel_path` lives in a `tests/` tree (integration tests may
/// use whatever constructs a test needs, for rules that opt out of
/// test code).
fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|c| c == "tests")
}

/// Marks the lines belonging to `#[cfg(test)]` items (typically
/// `mod tests { ... }`) by brace tracking over the code view.
fn test_item_lines(code_lines: &[&str]) -> Vec<bool> {
    let n = code_lines.len();
    let mut flags = vec![false; n];
    let mut i = 0;
    while i < n {
        if !code_lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip any further attributes to the decorated item.
        let mut j = i + 1;
        while j < n {
            let t = code_lines[j].trim_start();
            if t.is_empty() || t.starts_with("#[") {
                j += 1;
            } else {
                break;
            }
        }
        // Track the item to its end: balanced braces, or a `;` before
        // any brace opens (e.g. `#[cfg(test)] use ...;`).
        let mut depth: i64 = 0;
        let mut open_seen = false;
        let mut k = j.min(n.saturating_sub(1));
        'item: while k < n {
            flags[k] = true;
            for ch in code_lines[k].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        open_seen = true;
                    }
                    '}' => {
                        depth -= 1;
                        if open_seen && depth <= 0 {
                            break 'item;
                        }
                    }
                    ';' if !open_seen => break 'item,
                    _ => {}
                }
            }
            k += 1;
        }
        for flag in flags.iter_mut().take(k.min(n)).skip(i) {
            *flag = true;
        }
        i = (k + 1).max(j);
    }
    flags
}

enum SupParse {
    Valid { rule: String },
    Malformed { why: &'static str },
}

/// Parses a `lint:allow(...)` marker out of one comment's text.
/// Returns `None` when the comment is not a suppression at all. A
/// suppression must be the comment's whole content (the trimmed text
/// *starts with* the marker) — prose that merely mentions the syntax,
/// like this sentence, is not one.
fn parse_suppression(text: &str) -> Option<SupParse> {
    let trimmed = text.trim_start();
    let rest = trimmed.strip_prefix("lint:allow")?.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(SupParse::Malformed {
            why: "missing `(<rule>)` after `lint:allow`",
        });
    };
    let Some(close) = rest.find(')') else {
        return Some(SupParse::Malformed {
            why: "unclosed `(` in `lint:allow`",
        });
    };
    let rule = rest[..close].trim();
    if rule.is_empty() {
        return Some(SupParse::Malformed {
            why: "empty rule id in `lint:allow()`",
        });
    }
    let after = rest[close + 1..].trim_start();
    let just = match after.strip_prefix(':') {
        Some(j) => j,
        None => {
            return Some(SupParse::Malformed {
                why: "suppression without a justification (expected `): <why>`)",
            })
        }
    };
    if just.trim().is_empty() {
        return Some(SupParse::Malformed {
            why: "suppression with an empty justification",
        });
    }
    Some(SupParse::Valid {
        rule: rule.to_string(),
    })
}

struct Suppression {
    line: usize,
    rule: String,
    used: bool,
}

/// The engine: a rule registry plus the walking/suppression logic.
pub struct Engine {
    rules: Vec<Rule>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::builtin()
    }
}

impl Engine {
    /// Engine with the builtin registry ([`rules::builtin`]).
    pub fn builtin() -> Self {
        Engine {
            rules: rules::builtin(),
        }
    }

    /// The registered rules, in `--list` order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Analyzes one file's source text. `rel_path` must be
    /// `/`-separated and relative to the tree root (it drives path
    /// allowlists and `tests/` detection).
    pub fn check_file(&self, rel_path: &str, text: &str) -> Vec<Diagnostic> {
        let scanned = scan(text);
        let code_lines: Vec<&str> = scanned.code.lines().collect();
        let mut comment_by_line: BTreeMap<usize, String> = BTreeMap::new();
        for Comment { line, text } in &scanned.comments {
            let slot = comment_by_line.entry(*line).or_default();
            if !slot.is_empty() {
                slot.push(' ');
            }
            slot.push_str(text);
        }
        let view = FileView {
            rel_path,
            code_lines,
            comment_by_line,
        };
        let in_tests_dir = is_test_path(rel_path);
        let test_lines = test_item_lines(&view.code_lines);

        let mut found: Vec<Diagnostic> = Vec::new();
        for rule in &self.rules {
            if rule.path_allowed(rel_path) {
                continue;
            }
            let mut hits: Vec<(usize, String)> = Vec::new();
            (rule.check)(&view, &mut hits);
            for (line, message) in hits {
                if rule.skip_test_code
                    && (in_tests_dir || test_lines.get(line - 1).copied().unwrap_or(false))
                {
                    continue;
                }
                found.push(Diagnostic {
                    rule: rule.id.to_string(),
                    path: rel_path.to_string(),
                    line,
                    message,
                    help: rule.help.to_string(),
                });
            }
        }

        // Resolve suppressions: a marker covers matching diagnostics
        // on its own line (trailing comment) or the line below it.
        let mut sups: Vec<Suppression> = Vec::new();
        let mut out: Vec<Diagnostic> = Vec::new();
        let known: Vec<&str> = self.rules.iter().map(|r| r.id).collect();
        for (&line, text) in &view.comment_by_line {
            match parse_suppression(text) {
                None => {}
                Some(SupParse::Malformed { why }) => out.push(Diagnostic {
                    rule: SUPPRESSION_RULE.to_string(),
                    path: rel_path.to_string(),
                    line,
                    message: why.to_string(),
                    help: SUPPRESSION_HELP.to_string(),
                }),
                Some(SupParse::Valid { rule }) => {
                    if known.contains(&rule.as_str()) {
                        sups.push(Suppression {
                            line,
                            rule,
                            used: false,
                        });
                    } else {
                        out.push(Diagnostic {
                            rule: SUPPRESSION_RULE.to_string(),
                            path: rel_path.to_string(),
                            line,
                            message: format!("`lint:allow({rule})` names an unknown rule"),
                            help: SUPPRESSION_HELP.to_string(),
                        });
                    }
                }
            }
        }
        // A suppression covers its own line (trailing comment) or the
        // next line carrying code — so a marker whose justification
        // wraps onto further comment lines still reaches its target.
        let next_code_line = |after: usize| -> Option<usize> {
            ((after + 1)..=view.code_lines.len())
                .find(|&l| !view.code_lines[l - 1].trim().is_empty())
        };
        for d in found {
            let sup = sups.iter_mut().find(|s| {
                s.rule == d.rule && (s.line == d.line || next_code_line(s.line) == Some(d.line))
            });
            match sup {
                Some(s) => s.used = true,
                None => out.push(d),
            }
        }
        for s in &sups {
            if !s.used {
                out.push(Diagnostic {
                    rule: SUPPRESSION_RULE.to_string(),
                    path: rel_path.to_string(),
                    line: s.line,
                    message: format!(
                        "unused suppression: no `{}` diagnostic here to allow",
                        s.rule
                    ),
                    help: SUPPRESSION_HELP.to_string(),
                });
            }
        }
        out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
        out
    }

    /// Walks `root` and analyzes every `.rs` file, skipping `target/`,
    /// `vendor/` (external shims), `.git/` and `fixtures/` (seeded
    /// violations for the lint's own tests).
    pub fn check_tree(&self, root: &Path) -> io::Result<Report> {
        let mut files: Vec<String> = Vec::new();
        collect_rs(root, root, &mut files)?;
        files.sort();
        let mut diagnostics = Vec::new();
        for rel in &files {
            let text = fs::read_to_string(root.join(rel))?;
            diagnostics.extend(self.check_file(rel, &text));
        }
        diagnostics.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        Ok(Report {
            files_scanned: files.len(),
            diagnostics,
        })
    }
}

const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let scanned = scan(src);
        let lines: Vec<&str> = scanned.code.lines().collect();
        let flags = test_item_lines(&lines);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_single_item_is_marked() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn c() {}\n";
        let scanned = scan(src);
        let lines: Vec<&str> = scanned.code.lines().collect();
        let flags = test_item_lines(&lines);
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn suppression_parsing() {
        assert!(parse_suppression("just a comment").is_none());
        match parse_suppression("lint:allow(wall-clock): CLI timing only") {
            Some(SupParse::Valid { rule }) => assert_eq!(rule, "wall-clock"),
            _ => panic!("expected valid"),
        }
        assert!(matches!(
            parse_suppression("lint:allow(wall-clock)"),
            Some(SupParse::Malformed { .. })
        ));
        assert!(matches!(
            parse_suppression("lint:allow(wall-clock):   "),
            Some(SupParse::Malformed { .. })
        ));
        assert!(matches!(
            parse_suppression("lint:allow wall-clock: x"),
            Some(SupParse::Malformed { .. })
        ));
    }
}
