//! Token-aware Rust source scanning.
//!
//! The naive `line.split("//")` comment stripping the old
//! `tests/float_ordering_lint.rs` used had two failure modes: a `//`
//! inside a string literal truncated the line (hiding any violation
//! after the string), and pattern text inside strings or comments was
//! matched as if it were code. [`scan`] fixes both by walking the
//! source with a real lexer-grade state machine: line comments, block
//! comments (nested), string / raw-string / byte-string literals and
//! char literals (disambiguated from lifetimes) are all recognized.
//!
//! The output is a *code view* — the same text, byte-for-byte the same
//! line structure, with comment bodies and literal contents blanked to
//! spaces — plus the comments themselves, one entry per source line,
//! so rules can match code without false positives and still read
//! `// SAFETY:` / `// lint:allow(...)` annotations.

/// One comment's text, attributed to the line it appears on.
///
/// A block comment spanning several lines yields one `Comment` per
/// line, so line-oriented lookups (is there a `SAFETY:` within three
/// lines above?) need no special casing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based source line.
    pub line: usize,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// Result of [`scan`]: the blanked code view plus extracted comments.
#[derive(Debug, Clone)]
pub struct Scanned {
    /// Source text with comments and literal bodies replaced by
    /// spaces. Newlines are preserved, so line N of `code` is line N
    /// of the input; string/char delimiters (`"`, `'`) survive so the
    /// view still reads roughly like Rust.
    pub code: String,
    /// Every comment, one entry per (line, comment) pair.
    pub comments: Vec<Comment>,
}

/// Scans Rust source into a code view and a comment list.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut code = String::with_capacity(src.len());
    let mut comments: Vec<Comment> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    // Whether the previous code character could end an identifier —
    // `br"x"` starts a raw byte string but `abr"x"` is an identifier
    // followed by a plain string.
    let mut prev_ident = false;

    while i < n {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                let start = line;
                let mut text = String::new();
                code.push_str("  ");
                i += 2;
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    code.push(' ');
                    i += 1;
                }
                comments.push(Comment { line: start, text });
                prev_ident = false;
            }
            '/' if next == Some('*') => {
                let mut depth = 1usize;
                let mut text = String::new();
                let mut text_line = line;
                code.push_str("  ");
                i += 2;
                while i < n && depth > 0 {
                    let d = chars[i];
                    let dn = chars.get(i + 1).copied();
                    if d == '/' && dn == Some('*') {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if d == '*' && dn == Some('/') {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                    } else if d == '\n' {
                        comments.push(Comment {
                            line: text_line,
                            text: std::mem::take(&mut text),
                        });
                        code.push('\n');
                        line += 1;
                        text_line = line;
                        i += 1;
                    } else {
                        text.push(d);
                        code.push(' ');
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: text_line,
                    text,
                });
                prev_ident = false;
            }
            '"' => {
                consume_string(&chars, &mut i, &mut code, &mut line);
                prev_ident = false;
            }
            'r' if !prev_ident && matches!(next, Some('"') | Some('#')) => {
                if !consume_raw_string(&chars, &mut i, &mut code, &mut line) {
                    // `r#ident` (raw identifier) or a lone `r#`: plain code.
                    code.push(c);
                    i += 1;
                    prev_ident = true;
                }
            }
            'b' if !prev_ident && next == Some('"') => {
                code.push('b');
                i += 1;
                consume_string(&chars, &mut i, &mut code, &mut line);
                prev_ident = false;
            }
            'b' if !prev_ident && next == Some('\'') => {
                code.push('b');
                i += 1;
                consume_char_or_lifetime(&chars, &mut i, &mut code);
                prev_ident = false;
            }
            'b' if !prev_ident
                && next == Some('r')
                && matches!(chars.get(i + 2), Some('"') | Some('#')) =>
            {
                code.push('b');
                i += 1;
                if !consume_raw_string(&chars, &mut i, &mut code, &mut line) {
                    code.push('r');
                    i += 1;
                    prev_ident = true;
                }
            }
            '\'' => {
                consume_char_or_lifetime(&chars, &mut i, &mut code);
                prev_ident = false;
            }
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
                prev_ident = false;
            }
            _ => {
                code.push(c);
                i += 1;
                prev_ident = c.is_alphanumeric() || c == '_';
            }
        }
    }

    comments.retain(|c| !c.text.trim().is_empty());
    Scanned { code, comments }
}

/// Consumes a `"..."` literal starting at `chars[*i] == '"'`, blanking
/// its body. Handles `\"`/`\\` escapes, multi-line strings, and the
/// `\<newline>` line continuation.
fn consume_string(chars: &[char], i: &mut usize, code: &mut String, line: &mut usize) {
    let n = chars.len();
    code.push('"');
    *i += 1;
    while *i < n {
        match chars[*i] {
            '\\' => {
                code.push(' ');
                *i += 1;
                if *i < n {
                    if chars[*i] == '\n' {
                        code.push('\n');
                        *line += 1;
                    } else {
                        code.push(' ');
                    }
                    *i += 1;
                }
            }
            '"' => {
                code.push('"');
                *i += 1;
                return;
            }
            '\n' => {
                code.push('\n');
                *line += 1;
                *i += 1;
            }
            _ => {
                code.push(' ');
                *i += 1;
            }
        }
    }
}

/// Tries to consume `r"..."` / `r#"..."#` (arbitrary hash count)
/// starting at `chars[*i] == 'r'`. Returns false — consuming nothing —
/// if what follows is not actually a raw string (e.g. a raw
/// identifier like `r#fn`).
fn consume_raw_string(chars: &[char], i: &mut usize, code: &mut String, line: &mut usize) -> bool {
    let n = chars.len();
    let mut j = *i + 1;
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return false;
    }
    code.push('r');
    for _ in 0..hashes {
        code.push('#');
    }
    code.push('"');
    *i = j + 1;
    while *i < n {
        if chars[*i] == '\n' {
            code.push('\n');
            *line += 1;
            *i += 1;
        } else if chars[*i] == '"'
            && chars[*i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            code.push('"');
            for _ in 0..hashes {
                code.push('#');
            }
            *i += 1 + hashes;
            return true;
        } else {
            code.push(' ');
            *i += 1;
        }
    }
    true // unterminated raw string: blanked to EOF
}

/// Consumes a char literal (`'a'`, `'\n'`) or passes a lifetime
/// (`'static`) through as code, starting at `chars[*i] == '\''`.
fn consume_char_or_lifetime(chars: &[char], i: &mut usize, code: &mut String) {
    let n = chars.len();
    let next = chars.get(*i + 1).copied();
    if next == Some('\\') {
        // Escaped char literal: blank until the closing quote.
        code.push('\'');
        *i += 1;
        while *i < n && chars[*i] != '\'' {
            // A newline here means malformed source; bail so line
            // accounting stays intact.
            if chars[*i] == '\n' {
                return;
            }
            if chars[*i] == '\\' && *i + 1 < n && chars[*i + 1] != '\n' {
                code.push_str("  ");
                *i += 2;
            } else {
                code.push(' ');
                *i += 1;
            }
        }
        if *i < n {
            code.push('\'');
            *i += 1;
        }
    } else if next.is_some()
        && chars.get(*i + 2).copied() == Some('\'')
        && next != Some('\'')
        && next != Some('\n')
    {
        // 'x' — any single char followed by a closing quote.
        code.push('\'');
        code.push(' ');
        code.push('\'');
        *i += 3;
    } else {
        // A lifetime ('a, 'static) or stray quote: leave as code.
        code.push('\'');
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        scan(src).code
    }

    #[test]
    fn line_comment_is_blanked_and_captured() {
        let s = scan("let x = 1; // trailing note\n");
        assert!(!s.code.contains("trailing"));
        assert!(s.code.contains("let x = 1;"));
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[0].text.trim(), "trailing note");
    }

    #[test]
    fn slashes_inside_string_do_not_start_a_comment() {
        // The regression the old lint had: everything after "//" was
        // dropped, hiding the call that follows the literal.
        let s = scan("let url = \"http://x\"; evil_call();\n");
        assert!(s.code.contains("evil_call();"));
        assert!(s.comments.is_empty());
    }

    #[test]
    fn string_bodies_are_blanked() {
        let code = code_of("let s = \"Instant::now\";\n");
        assert!(!code.contains("Instant"));
        assert!(code.contains("let s = \""));
    }

    #[test]
    fn nested_block_comments_and_multiline_attribution() {
        let s = scan("a /* one /* two */ still */ b\n/* l1\nl2 */ c\n");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(s.code.contains('c'));
        assert!(!s.code.contains("still"));
        let lines: Vec<usize> = s.comments.iter().map(|c| c.line).collect();
        assert!(lines.contains(&1) && lines.contains(&2) && lines.contains(&3));
    }

    #[test]
    fn raw_strings_hide_their_bodies() {
        let code = code_of("let r = r#\"a \"quote\" // not a comment\"#; tail();\n");
        assert!(!code.contains("not a comment"));
        assert!(code.contains("tail();"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let code = code_of("let r#fn = 1; after();\n");
        assert!(code.contains("r#fn"));
        assert!(code.contains("after();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let code = code_of("let c = '\"'; let d: &'static str = x; let e = 'y';\n");
        // The quote character inside the char literal must not open a string.
        assert!(code.contains("let d: &'static str = x;"));
        assert!(!code.contains("'y'") || code.contains("' '"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let code = code_of("let s = \"a\\\"b\"; after();\n");
        assert!(code.contains("after();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let code = code_of("let a = b\"unsafe\"; let b2 = br#\"unsafe\"#; end();\n");
        assert!(!code.contains("unsafe"));
        assert!(code.contains("end();"));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let s = scan("let s = \"l1\nl2\";\n// after\n");
        assert_eq!(s.comments.len(), 1);
        assert_eq!(s.comments[0].line, 3);
        assert_eq!(s.code.lines().count(), 3);
    }
}
