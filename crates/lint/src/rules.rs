//! The builtin rule registry.
//!
//! Each rule enforces one clause of the determinism contract
//! (docs/ARCHITECTURE.md, "The determinism contract"); the mapping is
//! documented rule-by-rule in docs/LINTS.md. Rules match against the
//! *code view* produced by [`crate::scan::scan`], so pattern text inside
//! comments or string literals never trips them.

use crate::engine::FileView;

/// How a diagnostic from this rule is treated. Every builtin rule is
/// `Deny` — the test harness and CI fail on any diagnostic; `Warn` is
/// reserved for downstream rules that want report-only rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Any diagnostic fails the build.
    Deny,
    /// Reported but never fails the build.
    Warn,
}

impl Severity {
    /// Lower-case name, as printed by `tuna-lint --list`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One static-analysis rule.
pub struct Rule {
    /// Stable identifier, used in diagnostics and `lint:allow(...)`.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line description for `--list`.
    pub summary: &'static str,
    /// What to do instead; appended to every diagnostic.
    pub help: &'static str,
    /// Path suffixes (with `/` separators) the rule does not apply to:
    /// files where the flagged construct is the point.
    pub allow_paths: &'static [&'static str],
    /// Whether test code — `tests/` trees and `#[cfg(test)]` items —
    /// is exempt.
    pub skip_test_code: bool,
    /// The matcher: pushes `(1-based line, message)` pairs.
    pub check: fn(&FileView, &mut Vec<(usize, String)>),
}

impl Rule {
    /// Whether `rel_path` (always `/`-separated) is allowlisted.
    pub fn path_allowed(&self, rel_path: &str) -> bool {
        self.allow_paths.iter().any(|p| rel_path.ends_with(p))
    }
}

/// Finds `needle` in `line` at identifier boundaries: the characters
/// on both sides (if any) must not continue an identifier, so
/// `HashMap` matches but `MyHashMapLike` does not.
pub fn word_hit(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let p = start + pos;
        let before_ok = line[..p]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = line[p + needle.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        start = p + needle.len();
    }
    false
}

fn needle_rule(view: &FileView, out: &mut Vec<(usize, String)>, needles: &[&str], what: &str) {
    for (i, line) in view.code_lines.iter().enumerate() {
        for needle in needles {
            if word_hit(line, needle) {
                out.push((i + 1, format!("`{needle}` {what}")));
                break;
            }
        }
    }
}

fn wall_clock(view: &FileView, out: &mut Vec<(usize, String)>) {
    needle_rule(
        view,
        out,
        &["Instant::now", "SystemTime::now"],
        "reads the wall clock on a deterministic path",
    );
}

fn ambient_randomness(view: &FileView, out: &mut Vec<(usize, String)>) {
    needle_rule(
        view,
        out,
        &["thread_rng", "from_entropy", "RandomState"],
        "draws ambient (unseeded) randomness",
    );
}

fn unordered_iteration(view: &FileView, out: &mut Vec<(usize, String)>) {
    needle_rule(
        view,
        out,
        &["HashMap", "HashSet"],
        "has unordered (and RandomState-seeded) iteration",
    );
}

/// Lines of lookahead after a `partial_cmp` before `unwrap`/`expect`
/// stops counting as part of the same expression.
const FLOAT_LOOKAHEAD: usize = 2;

fn float_ordering(view: &FileView, out: &mut Vec<(usize, String)>) {
    let lines = &view.code_lines;
    for i in 0..lines.len() {
        if !word_hit(lines[i], "partial_cmp") {
            continue;
        }
        let window = &lines[i..(i + 1 + FLOAT_LOOKAHEAD).min(lines.len())];
        if window
            .iter()
            .any(|l| l.contains(".unwrap(") || l.contains(".expect("))
        {
            out.push((
                i + 1,
                "`partial_cmp` + `unwrap`/`expect` panics on NaN".to_string(),
            ));
        }
    }
}

fn undocumented_unsafe(view: &FileView, out: &mut Vec<(usize, String)>) {
    for (i, line) in view.code_lines.iter().enumerate() {
        if !word_hit(line, "unsafe") {
            continue;
        }
        let ln = i + 1;
        // A trailing comment on the line itself counts, as does any
        // line of the contiguous comment block sitting directly above.
        let mut documented = view.comment_at(ln).is_some_and(|c| c.contains("SAFETY:"));
        let mut l = ln;
        while !documented && l > 1 {
            l -= 1;
            match view.comment_at(l) {
                Some(c) => documented = c.contains("SAFETY:"),
                None => break,
            }
        }
        if !documented {
            out.push((ln, "`unsafe` without a `// SAFETY:` comment".to_string()));
        }
    }
}

/// The builtin registry, in the order `--list` prints.
pub fn builtin() -> Vec<Rule> {
    vec![
        Rule {
            id: "wall-clock",
            severity: Severity::Deny,
            summary: "Instant::now/SystemTime::now outside wall-clock-legitimate files",
            help: "thread a seam (tick count, caller-supplied clock) through instead; \
                   real time may only be *reported*, never feed results",
            allow_paths: &[
                // The daemon's readiness loop and its client genuinely
                // live on the wall clock (timeouts, budgets, watch).
                "crates/serve/src/bin/tunad.rs",
                "crates/serve/src/bin/tuna_ctl.rs",
                // The perf gate measures wall time; that is its job.
                "crates/bench/src/perf.rs",
                // Executor exec_stats reports per-lane wall-clock; the
                // timing never reaches results.
                "crates/core/src/executor.rs",
                // The obs crate's two-clock rule: WallClock is the one
                // place real time may enter telemetry, behind the Clock
                // seam. Everything else in crates/obs stays banned.
                "crates/obs/src/wall.rs",
            ],
            skip_test_code: true,
            check: wall_clock,
        },
        Rule {
            id: "ambient-randomness",
            severity: Severity::Deny,
            summary: "thread_rng/from_entropy/RandomState anywhere",
            help: "all randomness must flow from a seeded tuna_stats::Rng (fork it, \
                   never re-seed from the environment)",
            allow_paths: &[],
            skip_test_code: false,
            check: ambient_randomness,
        },
        Rule {
            id: "unordered-iteration",
            severity: Severity::Deny,
            summary: "std HashMap/HashSet outside test code",
            help: "use BTreeMap/BTreeSet (or an insertion-ordered Vec + index) so \
                   iteration order is deterministic and seed-independent",
            allow_paths: &[],
            skip_test_code: true,
            check: unordered_iteration,
        },
        Rule {
            id: "float-ordering",
            severity: Severity::Deny,
            summary: "partial_cmp followed by unwrap/expect",
            help: "use f64::total_cmp or tuna_optimizer::history::cost_cmp; a NaN \
                   measurement must rank, not panic",
            allow_paths: &[],
            skip_test_code: true,
            check: float_ordering,
        },
        Rule {
            id: "undocumented-unsafe",
            severity: Severity::Deny,
            summary: "unsafe block/fn/impl without a SAFETY: comment",
            help: "state the invariant that makes the unsafe sound in a `// SAFETY:` \
                   comment on the line or in the comment block directly above",
            allow_paths: &[],
            skip_test_code: false,
            check: undocumented_unsafe,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::word_hit;

    #[test]
    fn word_boundaries() {
        assert!(word_hit("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(word_hit("HashMap::new()", "HashMap"));
        assert!(!word_hit("struct MyHashMapLike;", "HashMap"));
        assert!(!word_hit("undocumented_unsafe(x)", "unsafe"));
        assert!(word_hit("unsafe { poll() }", "unsafe"));
        assert!(!word_hit("nowhere", "now"));
    }
}
