//! `tuna-lint` — token-aware static analysis enforcing the
//! determinism contract.
//!
//! Every guarantee this reproduction makes — bit-identical results at
//! any `TUNA_WORKERS` count, kill/restart byte-identity,
//! checksum-stable perfgate scenarios — rests on the determinism
//! contract (docs/ARCHITECTURE.md). This crate enforces the
//! mechanically checkable part of that contract at the source level:
//!
//! - **`wall-clock`** — no `Instant::now`/`SystemTime::now` outside
//!   the files whose job is wall time,
//! - **`ambient-randomness`** — no `thread_rng`/`from_entropy`/
//!   `RandomState`,
//! - **`unordered-iteration`** — no std `HashMap`/`HashSet` outside
//!   test code,
//! - **`float-ordering`** — no `partial_cmp` + `unwrap`/`expect`,
//! - **`undocumented-unsafe`** — every `unsafe` carries a
//!   `// SAFETY:` comment.
//!
//! Violations that are genuinely fine carry an explicit, justified
//! suppression — `// lint:allow(<rule>): <why>` — and a suppression
//! without a justification (or one that no longer hits) is itself a
//! diagnostic. Rules match a lexer-grade *code view* ([`scan::scan`]), so
//! `//` inside a string literal cannot hide a violation and pattern
//! text inside comments cannot fake one.
//!
//! One core, three frontends: the `tuna-lint` binary (human and
//! `--format json` output, `--list` rule table), the
//! `tests/source_lints.rs` harness, and the CI `lints` job. Rule
//! semantics and the contract mapping are documented in docs/LINTS.md.
//!
//! ```
//! use tuna_lint::Engine;
//!
//! let diags = Engine::builtin().check_file(
//!     "crates/demo/src/lib.rs",
//!     "fn now() -> std::time::Instant { std::time::Instant::now() }\n",
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "wall-clock");
//! ```

pub mod engine;
pub mod rules;
pub mod scan;

pub use engine::{Diagnostic, Engine, Report, SUPPRESSION_RULE};
pub use rules::{Rule, Severity};
pub use scan::{scan, Comment, Scanned};
