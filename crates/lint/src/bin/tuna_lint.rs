//! `tuna-lint` — run the determinism-contract lints over a source tree.
//!
//! ```text
//! tuna-lint [--root DIR] [--format human|json] [--list]
//! ```
//!
//! Scans `DIR` (default: the current directory — workspace root when
//! run via `cargo run -p tuna-lint`) and exits 1 if any diagnostic is
//! found, 0 on a clean tree. `--list` prints the rule table (id,
//! severity, allowlist) and exits; docs/LINTS.md is spot-checked
//! against this output.

use std::path::PathBuf;
use std::process::ExitCode;

use tuna_lint::{Engine, Report};
use tuna_stats::json::quote;

fn usage() -> ! {
    eprintln!("usage: tuna-lint [--root DIR] [--format human|json] [--list]");
    std::process::exit(2);
}

enum Format {
    Human,
    Json,
}

fn print_list(engine: &Engine) {
    println!("{:<22} {:<9} allowlist", "rule", "severity");
    for rule in engine.rules() {
        let allow = if rule.allow_paths.is_empty() {
            "-".to_string()
        } else {
            rule.allow_paths.join(", ")
        };
        println!("{:<22} {:<9} {}", rule.id, rule.severity.as_str(), allow);
        println!("{:<22} {:<9} {}", "", "", rule.summary);
    }
    println!("{:<22} {:<9} -", tuna_lint::SUPPRESSION_RULE, "deny");
    let sup_summary = "malformed, unjustified, unknown-rule or unused `lint:allow` markers";
    println!("{:<22} {:<9} {sup_summary}", "", "");
}

fn print_human(report: &Report) {
    for d in &report.diagnostics {
        println!("{d}");
        println!("    help: {}", d.help);
    }
    println!(
        "{} files scanned, {} diagnostic{}",
        report.files_scanned,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        }
    );
}

fn print_json(report: &Report) {
    let mut out = String::new();
    out.push_str("{\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"help\":{}}}",
            quote(&d.rule),
            quote(&d.path),
            d.line,
            quote(&d.message),
            quote(&d.help),
        ));
    }
    out.push_str("]}");
    println!("{out}");
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut list = false;
    let mut i = 0;
    while i < argv.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match argv[i].as_str() {
            "--root" => root = PathBuf::from(value(&mut i)),
            "--format" => {
                format = match value(&mut i).as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    _ => usage(),
                }
            }
            "--list" => list = true,
            _ => usage(),
        }
        i += 1;
    }

    let engine = Engine::builtin();
    if list {
        print_list(&engine);
        return ExitCode::SUCCESS;
    }
    let report = match engine.check_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tuna-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Human => print_human(&report),
        Format::Json => print_json(&report),
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
