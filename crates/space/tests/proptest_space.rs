//! Property-based tests for configuration spaces.

use proptest::prelude::*;
use tuna_space::ConfigSpace;
use tuna_stats::rng::Rng;

fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    (
        1i64..64,
        1i64..1_000_000,
        0.0f64..10.0,
        1usize..6,
        any::<bool>(),
    )
        .prop_map(|(int_hi, log_hi, float_lo, n_cat, with_bool)| {
            let mut b = ConfigSpace::builder()
                .int("i", 0, int_hi)
                .int_log("il", 1, log_hi)
                .float("f", float_lo, float_lo + 5.0);
            let choices: Vec<String> = (0..n_cat).map(|i| format!("c{i}")).collect();
            let refs: Vec<&str> = choices.iter().map(|s| s.as_str()).collect();
            b = b.categorical("c", &refs);
            if with_bool {
                b = b.boolean("b");
            }
            b.build()
        })
}

proptest! {
    #[test]
    fn sampled_configs_validate(space in arb_space(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..16 {
            let cfg = space.sample(&mut rng);
            prop_assert!(space.validate(&cfg).is_ok());
        }
    }

    #[test]
    fn encoding_is_unit_box(space in arb_space(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..16 {
            let cfg = space.sample(&mut rng);
            for z in space.encode(&cfg) {
                prop_assert!((0.0..=1.0).contains(&z));
            }
            for z in space.encode_one_hot(&cfg) {
                prop_assert!((0.0..=1.0).contains(&z));
            }
        }
    }

    #[test]
    fn one_hot_width_consistent(space in arb_space(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let cfg = space.sample(&mut rng);
        prop_assert_eq!(space.encode_one_hot(&cfg).len(), space.one_hot_width());
    }

    #[test]
    fn neighbors_validate_and_differ_minimally(space in arb_space(), seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        let cfg = space.sample(&mut rng);
        for _ in 0..16 {
            let nb = space.neighbor(&cfg, &mut rng);
            prop_assert!(space.validate(&nb).is_ok());
            let diffs = cfg
                .values()
                .iter()
                .zip(nb.values())
                .filter(|(a, b)| a != b)
                .count();
            prop_assert!(diffs <= 1);
        }
    }

    #[test]
    fn config_id_equality_matches_value_equality(space in arb_space(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let c1 = space.sample(&mut Rng::seed_from(s1));
        let c2 = space.sample(&mut Rng::seed_from(s2));
        if c1 == c2 {
            prop_assert_eq!(c1.id(), c2.id());
        } else {
            prop_assert_ne!(c1.id(), c2.id());
        }
    }
}
