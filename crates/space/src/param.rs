//! Parameter specifications and values.

/// The domain of a single tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Integer range `[lo, hi]` (inclusive). When `log` is set, sampling and
    /// encoding happen in log space, which suits size-like knobs such as
    /// buffer sizes.
    Int { lo: i64, hi: i64, log: bool },
    /// Float range `[lo, hi]`. `log` as for [`Domain::Int`].
    Float { lo: f64, hi: f64, log: bool },
    /// A finite, unordered set of choices, referenced by index.
    Categorical { choices: Vec<String> },
    /// A boolean flag.
    Bool,
}

impl Domain {
    /// Number of one-hot columns this domain occupies.
    pub fn one_hot_width(&self) -> usize {
        match self {
            Domain::Categorical { choices } => choices.len(),
            _ => 1,
        }
    }
}

/// A named parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Knob name, unique within a space.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
}

impl ParamSpec {
    /// Creates a parameter spec.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        ParamSpec {
            name: name.into(),
            domain,
        }
    }
}

/// A concrete value for one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// Categorical choice index.
    Cat(usize),
    /// Boolean flag.
    Bool(bool),
}

impl ParamValue {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            ParamValue::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Float`.
    pub fn as_float(&self) -> f64 {
        match self {
            ParamValue::Float(v) => *v,
            other => panic!("expected Float, got {other:?}"),
        }
    }

    /// The categorical index payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Cat`.
    pub fn as_cat(&self) -> usize {
        match self {
            ParamValue::Cat(v) => *v,
            other => panic!("expected Cat, got {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            ParamValue::Bool(v) => *v,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// A numeric view of the value, independent of its type. Used when
    /// hashing and for debug output; *not* the model encoding.
    pub fn as_f64_lossy(&self) -> f64 {
        match self {
            ParamValue::Int(v) => *v as f64,
            ParamValue::Float(v) => *v,
            ParamValue::Cat(v) => *v as f64,
            ParamValue::Bool(v) => {
                if *v {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v:.4}"),
            ParamValue::Cat(v) => write!(f, "#{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        assert_eq!(ParamValue::Int(5).as_int(), 5);
        assert_eq!(ParamValue::Float(2.5).as_float(), 2.5);
        assert_eq!(ParamValue::Cat(2).as_cat(), 2);
        assert!(ParamValue::Bool(true).as_bool());
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        ParamValue::Float(1.0).as_int();
    }

    #[test]
    fn lossy_f64_views() {
        assert_eq!(ParamValue::Int(3).as_f64_lossy(), 3.0);
        assert_eq!(ParamValue::Bool(false).as_f64_lossy(), 0.0);
        assert_eq!(ParamValue::Cat(4).as_f64_lossy(), 4.0);
    }

    #[test]
    fn one_hot_width() {
        assert_eq!(Domain::Bool.one_hot_width(), 1);
        assert_eq!(
            Domain::Categorical {
                choices: vec!["a".into(), "b".into(), "c".into()]
            }
            .one_hot_width(),
            3
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(ParamValue::Int(7).to_string(), "7");
        assert_eq!(ParamValue::Bool(true).to_string(), "true");
    }
}
