//! Configuration spaces for black-box system tuning.
//!
//! A [`ConfigSpace`] declares the tunable knobs of a system-under-test —
//! integers (optionally log-scaled), floats, categoricals and booleans — and
//! provides everything an optimizer needs to search over them:
//!
//! - uniform sampling ([`ConfigSpace::sample`]),
//! - a numeric encoding for surrogate models ([`ConfigSpace::encode`],
//!   [`ConfigSpace::encode_one_hot`]),
//! - neighborhood moves for local search ([`ConfigSpace::neighbor`]),
//! - validation ([`ConfigSpace::validate`]).
//!
//! # Examples
//!
//! ```
//! use tuna_space::{ConfigSpace, ParamValue};
//! use tuna_stats::rng::Rng;
//!
//! let space = ConfigSpace::builder()
//!     .int_log("shared_buffers_mb", 8, 16384)
//!     .float("random_page_cost", 1.0, 8.0)
//!     .categorical("wal_level", &["minimal", "replica", "logical"])
//!     .boolean("enable_hashjoin")
//!     .build();
//!
//! let mut rng = Rng::seed_from(1);
//! let cfg = space.sample(&mut rng);
//! assert!(space.validate(&cfg).is_ok());
//! assert_eq!(space.encode(&cfg).len(), 4);
//! ```

pub mod config;
pub mod param;
pub mod space;

pub use config::{Config, ConfigId};
pub use param::{Domain, ParamSpec, ParamValue};
pub use space::{ConfigSpace, ConfigSpaceBuilder, SpaceError};

#[cfg(test)]
mod smoke {
    use crate::{ConfigSpace, ParamValue};
    use tuna_stats::rng::Rng;

    #[test]
    fn sampling_stays_within_declared_bounds() {
        let space = ConfigSpace::builder()
            .int("i", -5, 5)
            .int_log("il", 1, 4096)
            .float("f", 0.25, 4.0)
            .categorical("c", &["a", "b", "c"])
            .boolean("b")
            .build();
        let mut rng = Rng::seed_from(11);
        for _ in 0..200 {
            let cfg = space.sample(&mut rng);
            assert!(space.validate(&cfg).is_ok());
            match space.value_of(&cfg, "i") {
                ParamValue::Int(v) => assert!((-5..=5).contains(&v)),
                other => panic!("wrong domain for i: {other:?}"),
            }
            match space.value_of(&cfg, "il") {
                ParamValue::Int(v) => assert!((1..=4096).contains(&v)),
                other => panic!("wrong domain for il: {other:?}"),
            }
            match space.value_of(&cfg, "f") {
                ParamValue::Float(v) => assert!((0.25..=4.0).contains(&v)),
                other => panic!("wrong domain for f: {other:?}"),
            }
            for z in space.encode(&cfg) {
                assert!((0.0..=1.0).contains(&z), "encoding {z} outside unit box");
            }
        }
    }
}
