//! Configuration spaces for black-box system tuning.
//!
//! A [`ConfigSpace`] declares the tunable knobs of a system-under-test —
//! integers (optionally log-scaled), floats, categoricals and booleans — and
//! provides everything an optimizer needs to search over them:
//!
//! - uniform sampling ([`ConfigSpace::sample`]),
//! - a numeric encoding for surrogate models ([`ConfigSpace::encode`],
//!   [`ConfigSpace::encode_one_hot`]),
//! - neighborhood moves for local search ([`ConfigSpace::neighbor`]),
//! - validation ([`ConfigSpace::validate`]).
//!
//! # Examples
//!
//! ```
//! use tuna_space::{ConfigSpace, ParamValue};
//! use tuna_stats::rng::Rng;
//!
//! let space = ConfigSpace::builder()
//!     .int_log("shared_buffers_mb", 8, 16384)
//!     .float("random_page_cost", 1.0, 8.0)
//!     .categorical("wal_level", &["minimal", "replica", "logical"])
//!     .boolean("enable_hashjoin")
//!     .build();
//!
//! let mut rng = Rng::seed_from(1);
//! let cfg = space.sample(&mut rng);
//! assert!(space.validate(&cfg).is_ok());
//! assert_eq!(space.encode(&cfg).len(), 4);
//! ```

pub mod config;
pub mod param;
pub mod space;

pub use config::{Config, ConfigId};
pub use param::{Domain, ParamSpec, ParamValue};
pub use space::{ConfigSpace, ConfigSpaceBuilder, SpaceError};
