//! Concrete configurations (one value per parameter of a space).

use crate::param::ParamValue;
use tuna_stats::rng::{hash64, hash_combine};

/// Stable identity of a configuration, derived from its values.
///
/// Used by the datastore and the multi-fidelity scheduler to recognize a
/// config across budgets regardless of where it is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConfigId(pub u64);

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cfg-{:016x}", self.0)
    }
}

/// A concrete configuration: one [`ParamValue`] per parameter, in space
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    values: Vec<ParamValue>,
}

impl Config {
    /// Creates a configuration from ordered values.
    pub fn new(values: Vec<ParamValue>) -> Self {
        Config { values }
    }

    /// The ordered values.
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration has no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> ParamValue {
        self.values[i]
    }

    /// Replaces the value at position `i`, returning a new configuration.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn with(&self, i: usize, v: ParamValue) -> Config {
        let mut values = self.values.clone();
        values[i] = v;
        Config { values }
    }

    /// Stable content hash of the configuration.
    ///
    /// Floats hash by bit pattern, so two configs compare equal iff their
    /// ids are equal (NaN never appears in valid configs).
    pub fn id(&self) -> ConfigId {
        let mut h = hash64(0xC0FF_EE00_u64 ^ self.values.len() as u64);
        for v in &self.values {
            let tag = match v {
                ParamValue::Int(x) => hash_combine(1, *x as u64),
                ParamValue::Float(x) => hash_combine(2, x.to_bits()),
                ParamValue::Cat(x) => hash_combine(3, *x as u64),
                ParamValue::Bool(x) => hash_combine(4, *x as u64),
            };
            h = hash_combine(h, tag);
        }
        ConfigId(h)
    }
}

impl std::fmt::Display for Config {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> Config {
        Config::new(vec![
            ParamValue::Int(128),
            ParamValue::Float(1.5),
            ParamValue::Cat(2),
            ParamValue::Bool(true),
        ])
    }

    #[test]
    fn id_is_stable_and_content_based() {
        let a = sample_config();
        let b = sample_config();
        assert_eq!(a.id(), b.id());
        let c = a.with(0, ParamValue::Int(129));
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn id_distinguishes_value_types() {
        let a = Config::new(vec![ParamValue::Int(1)]);
        let b = Config::new(vec![ParamValue::Cat(1)]);
        let c = Config::new(vec![ParamValue::Bool(true)]);
        assert_ne!(a.id(), b.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn with_does_not_mutate_original() {
        let a = sample_config();
        let b = a.with(3, ParamValue::Bool(false));
        assert!(a.get(3).as_bool());
        assert!(!b.get(3).as_bool());
    }

    #[test]
    fn display_roundtrip_smoke() {
        let s = sample_config().to_string();
        assert!(s.starts_with('[') && s.ends_with(']'));
        assert!(s.contains("128"));
    }

    #[test]
    fn empty_config() {
        let c = Config::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}
