//! The [`ConfigSpace`] type: declaration, sampling, encoding, neighborhoods.

use crate::config::Config;
use crate::param::{Domain, ParamSpec, ParamValue};
use tuna_stats::rng::Rng;

/// Error produced when a configuration does not fit a space.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Config has a different number of values than the space has params.
    ArityMismatch { expected: usize, got: usize },
    /// Value type does not match the parameter domain.
    TypeMismatch { param: String },
    /// Value is outside the declared bounds.
    OutOfBounds { param: String, value: String },
    /// Two parameters share a name.
    DuplicateName(String),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            SpaceError::TypeMismatch { param } => write!(f, "type mismatch for '{param}'"),
            SpaceError::OutOfBounds { param, value } => {
                write!(f, "value {value} out of bounds for '{param}'")
            }
            SpaceError::DuplicateName(name) => write!(f, "duplicate parameter name '{name}'"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// An ordered collection of named parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSpace {
    params: Vec<ParamSpec>,
}

/// Builder for [`ConfigSpace`].
#[derive(Debug, Default)]
pub struct ConfigSpaceBuilder {
    params: Vec<ParamSpec>,
}

impl ConfigSpaceBuilder {
    /// Adds a linear integer parameter on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int(mut self, name: &str, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "int '{name}': lo {lo} > hi {hi}");
        self.params
            .push(ParamSpec::new(name, Domain::Int { lo, hi, log: false }));
        self
    }

    /// Adds a log-scaled integer parameter on `[lo, hi]` (`lo >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `lo < 1` or `lo > hi`.
    pub fn int_log(mut self, name: &str, lo: i64, hi: i64) -> Self {
        assert!(lo >= 1, "int_log '{name}': lo must be >= 1");
        assert!(lo <= hi, "int_log '{name}': lo {lo} > hi {hi}");
        self.params
            .push(ParamSpec::new(name, Domain::Int { lo, hi, log: true }));
        self
    }

    /// Adds a linear float parameter on `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or inverted.
    pub fn float(mut self, name: &str, lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "float '{name}': invalid bounds"
        );
        self.params
            .push(ParamSpec::new(name, Domain::Float { lo, hi, log: false }));
        self
    }

    /// Adds a log-scaled float parameter on `[lo, hi]` (`lo > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `lo <= 0` or the bounds are invalid.
    pub fn float_log(mut self, name: &str, lo: f64, hi: f64) -> Self {
        assert!(
            lo > 0.0 && lo <= hi && hi.is_finite(),
            "float_log '{name}': invalid bounds"
        );
        self.params
            .push(ParamSpec::new(name, Domain::Float { lo, hi, log: true }));
        self
    }

    /// Adds a categorical parameter.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn categorical(mut self, name: &str, choices: &[&str]) -> Self {
        assert!(!choices.is_empty(), "categorical '{name}': no choices");
        self.params.push(ParamSpec::new(
            name,
            Domain::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
        ));
        self
    }

    /// Adds a boolean parameter.
    pub fn boolean(mut self, name: &str) -> Self {
        self.params.push(ParamSpec::new(name, Domain::Bool));
        self
    }

    /// Finalizes the space.
    ///
    /// # Panics
    ///
    /// Panics if two parameters share a name.
    pub fn build(self) -> ConfigSpace {
        for (i, a) in self.params.iter().enumerate() {
            for b in &self.params[i + 1..] {
                assert!(a.name != b.name, "duplicate parameter name '{}'", a.name);
            }
        }
        ConfigSpace {
            params: self.params,
        }
    }
}

impl ConfigSpace {
    /// Starts building a space.
    pub fn builder() -> ConfigSpaceBuilder {
        ConfigSpaceBuilder::default()
    }

    /// The ordered parameter specs.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Index of the parameter named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// The value of parameter `name` in `config`.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn value_of(&self, config: &Config, name: &str) -> ParamValue {
        let i = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter '{name}'"));
        config.get(i)
    }

    /// Samples a uniformly random configuration (log-domains uniform in log
    /// space).
    pub fn sample(&self, rng: &mut Rng) -> Config {
        let values = self
            .params
            .iter()
            .map(|p| match &p.domain {
                Domain::Int { lo, hi, log } => {
                    if *log {
                        let v = rng.range_f64((*lo as f64).ln(), ((*hi as f64) + 1.0).ln());
                        ParamValue::Int((v.exp().floor() as i64).clamp(*lo, *hi))
                    } else {
                        ParamValue::Int(rng.range_i64(*lo, *hi))
                    }
                }
                Domain::Float { lo, hi, log } => {
                    if *log {
                        ParamValue::Float(rng.range_f64(lo.ln(), hi.ln()).exp().clamp(*lo, *hi))
                    } else {
                        ParamValue::Float(rng.range_f64(*lo, *hi))
                    }
                }
                Domain::Categorical { choices } => ParamValue::Cat(rng.below(choices.len())),
                Domain::Bool => ParamValue::Bool(rng.chance(0.5)),
            })
            .collect();
        Config::new(values)
    }

    /// Checks that `config` structurally fits this space.
    pub fn validate(&self, config: &Config) -> Result<(), SpaceError> {
        if config.len() != self.params.len() {
            return Err(SpaceError::ArityMismatch {
                expected: self.params.len(),
                got: config.len(),
            });
        }
        for (p, v) in self.params.iter().zip(config.values()) {
            match (&p.domain, v) {
                (Domain::Int { lo, hi, .. }, ParamValue::Int(x)) => {
                    if x < lo || x > hi {
                        return Err(SpaceError::OutOfBounds {
                            param: p.name.clone(),
                            value: x.to_string(),
                        });
                    }
                }
                (Domain::Float { lo, hi, .. }, ParamValue::Float(x)) => {
                    if !x.is_finite() || x < lo || x > hi {
                        return Err(SpaceError::OutOfBounds {
                            param: p.name.clone(),
                            value: x.to_string(),
                        });
                    }
                }
                (Domain::Categorical { choices }, ParamValue::Cat(x)) => {
                    if *x >= choices.len() {
                        return Err(SpaceError::OutOfBounds {
                            param: p.name.clone(),
                            value: x.to_string(),
                        });
                    }
                }
                (Domain::Bool, ParamValue::Bool(_)) => {}
                _ => {
                    return Err(SpaceError::TypeMismatch {
                        param: p.name.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Encodes a configuration as one `f64` per parameter, each normalized
    /// to `[0, 1]` (categoricals as `index / (k-1)`, suitable for
    /// tree-based surrogates).
    ///
    /// # Panics
    ///
    /// Panics if the config does not fit the space (validate first when the
    /// config comes from outside).
    pub fn encode(&self, config: &Config) -> Vec<f64> {
        assert_eq!(config.len(), self.params.len(), "config/space arity");
        self.params
            .iter()
            .zip(config.values())
            .map(|(p, v)| Self::encode_one(p, v))
            .collect()
    }

    fn encode_one(p: &ParamSpec, v: &ParamValue) -> f64 {
        match (&p.domain, v) {
            (Domain::Int { lo, hi, log }, ParamValue::Int(x)) => {
                if lo == hi {
                    return 0.5;
                }
                if *log {
                    let (l, h, xv) = ((*lo as f64).ln(), (*hi as f64).ln(), (*x as f64).ln());
                    (xv - l) / (h - l)
                } else {
                    (*x - *lo) as f64 / (*hi - *lo) as f64
                }
            }
            (Domain::Float { lo, hi, log }, ParamValue::Float(x)) => {
                if (hi - lo).abs() < f64::EPSILON {
                    return 0.5;
                }
                if *log {
                    (x.ln() - lo.ln()) / (hi.ln() - lo.ln())
                } else {
                    (x - lo) / (hi - lo)
                }
            }
            (Domain::Categorical { choices }, ParamValue::Cat(x)) => {
                if choices.len() <= 1 {
                    0.5
                } else {
                    *x as f64 / (choices.len() - 1) as f64
                }
            }
            (Domain::Bool, ParamValue::Bool(x)) => {
                if *x {
                    1.0
                } else {
                    0.0
                }
            }
            _ => panic!("type mismatch for '{}'", p.name),
        }
    }

    /// One-hot encoding: numeric parameters normalized to `[0,1]`,
    /// categoricals expanded to indicator columns (suitable for GP
    /// surrogates where index distance is meaningless).
    pub fn encode_one_hot(&self, config: &Config) -> Vec<f64> {
        assert_eq!(config.len(), self.params.len(), "config/space arity");
        let mut out = Vec::with_capacity(self.one_hot_width());
        for (p, v) in self.params.iter().zip(config.values()) {
            match (&p.domain, v) {
                (Domain::Categorical { choices }, ParamValue::Cat(x)) => {
                    for i in 0..choices.len() {
                        out.push(if i == *x { 1.0 } else { 0.0 });
                    }
                }
                _ => out.push(Self::encode_one(p, v)),
            }
        }
        out
    }

    /// Width of the one-hot encoding.
    pub fn one_hot_width(&self) -> usize {
        self.params.iter().map(|p| p.domain.one_hot_width()).sum()
    }

    /// Produces a neighbor of `config` by perturbing one random parameter:
    /// numeric values take a Gaussian step (sigma = 20% of the normalized
    /// range), categoricals/booleans switch to a different choice.
    pub fn neighbor(&self, config: &Config, rng: &mut Rng) -> Config {
        assert!(!self.params.is_empty(), "neighbor of empty space");
        let i = rng.below(self.params.len());
        let p = &self.params[i];
        let new_value = match (&p.domain, config.get(i)) {
            (Domain::Int { lo, hi, log }, ParamValue::Int(x)) => {
                if lo == hi {
                    ParamValue::Int(x)
                } else if *log {
                    let (l, h) = ((*lo as f64).ln(), (*hi as f64).ln());
                    let z = ((x as f64).ln() - l) / (h - l);
                    let z2 = (z + 0.2 * rng.next_gaussian()).clamp(0.0, 1.0);
                    ParamValue::Int(((l + z2 * (h - l)).exp().round() as i64).clamp(*lo, *hi))
                } else {
                    let z = (x - lo) as f64 / (hi - lo) as f64;
                    let z2 = (z + 0.2 * rng.next_gaussian()).clamp(0.0, 1.0);
                    ParamValue::Int(lo + (z2 * (hi - lo) as f64).round() as i64)
                }
            }
            (Domain::Float { lo, hi, log }, ParamValue::Float(x)) => {
                if (hi - lo).abs() < f64::EPSILON {
                    ParamValue::Float(x)
                } else if *log {
                    let (l, h) = (lo.ln(), hi.ln());
                    let z = (x.ln() - l) / (h - l);
                    let z2 = (z + 0.2 * rng.next_gaussian()).clamp(0.0, 1.0);
                    ParamValue::Float((l + z2 * (h - l)).exp().clamp(*lo, *hi))
                } else {
                    let z = (x - lo) / (hi - lo);
                    let z2 = (z + 0.2 * rng.next_gaussian()).clamp(0.0, 1.0);
                    ParamValue::Float(lo + z2 * (hi - lo))
                }
            }
            (Domain::Categorical { choices }, ParamValue::Cat(x)) => {
                if choices.len() <= 1 {
                    ParamValue::Cat(x)
                } else {
                    let mut nxt = rng.below(choices.len() - 1);
                    if nxt >= x {
                        nxt += 1;
                    }
                    ParamValue::Cat(nxt)
                }
            }
            (Domain::Bool, ParamValue::Bool(x)) => ParamValue::Bool(!x),
            _ => panic!("type mismatch for '{}'", p.name),
        };
        config.with(i, new_value)
    }

    /// Generates `n` neighbors of `config`.
    pub fn neighbors(&self, config: &Config, n: usize, rng: &mut Rng) -> Vec<Config> {
        (0..n).map(|_| self.neighbor(config, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_space() -> ConfigSpace {
        ConfigSpace::builder()
            .int("workers", 1, 16)
            .int_log("buffer_mb", 8, 16384)
            .float("cost", 0.5, 8.0)
            .float_log("rate", 0.001, 10.0)
            .categorical("policy", &["lru", "lfu", "random"])
            .boolean("enabled")
            .build()
    }

    #[test]
    fn sample_always_validates() {
        let space = demo_space();
        let mut rng = Rng::seed_from(9);
        for _ in 0..500 {
            let cfg = space.sample(&mut rng);
            assert!(space.validate(&cfg).is_ok());
        }
    }

    #[test]
    fn encode_in_unit_interval() {
        let space = demo_space();
        let mut rng = Rng::seed_from(10);
        for _ in 0..200 {
            let cfg = space.sample(&mut rng);
            for (i, z) in space.encode(&cfg).iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(z),
                    "param {i} encoded to {z} out of [0,1]"
                );
            }
        }
    }

    #[test]
    fn encode_endpoints() {
        let space = ConfigSpace::builder().int("a", 0, 10).build();
        let lo = Config::new(vec![ParamValue::Int(0)]);
        let hi = Config::new(vec![ParamValue::Int(10)]);
        assert_eq!(space.encode(&lo), vec![0.0]);
        assert_eq!(space.encode(&hi), vec![1.0]);
    }

    #[test]
    fn log_sampling_covers_orders_of_magnitude() {
        let space = ConfigSpace::builder().int_log("b", 8, 16384).build();
        let mut rng = Rng::seed_from(11);
        let mut small = 0;
        let mut large = 0;
        for _ in 0..2000 {
            let v = space.sample(&mut rng).get(0).as_int();
            if v < 128 {
                small += 1;
            }
            if v >= 2048 {
                large += 1;
            }
        }
        // Log-uniform: [8,128) covers ~36% of log range, [2048,16384] ~27%.
        assert!(small > 400, "small={small}");
        assert!(large > 300, "large={large}");
    }

    #[test]
    fn one_hot_width_and_values() {
        let space = demo_space();
        assert_eq!(space.one_hot_width(), 5 + 3);
        let mut rng = Rng::seed_from(12);
        let cfg = space.sample(&mut rng);
        let oh = space.encode_one_hot(&cfg);
        assert_eq!(oh.len(), 8);
        let cat_cols = &oh[4..7];
        assert_eq!(cat_cols.iter().filter(|&&x| x == 1.0).count(), 1);
        assert_eq!(cat_cols.iter().filter(|&&x| x == 0.0).count(), 2);
    }

    #[test]
    fn neighbor_changes_exactly_one_param_and_validates() {
        let space = demo_space();
        let mut rng = Rng::seed_from(13);
        let cfg = space.sample(&mut rng);
        for _ in 0..300 {
            let nb = space.neighbor(&cfg, &mut rng);
            assert!(space.validate(&nb).is_ok());
            let diffs = cfg
                .values()
                .iter()
                .zip(nb.values())
                .filter(|(a, b)| a != b)
                .count();
            assert!(diffs <= 1, "{diffs} params changed");
        }
    }

    #[test]
    fn bool_neighbor_flips() {
        let space = ConfigSpace::builder().boolean("flag").build();
        let cfg = Config::new(vec![ParamValue::Bool(false)]);
        let mut rng = Rng::seed_from(14);
        let nb = space.neighbor(&cfg, &mut rng);
        assert!(nb.get(0).as_bool());
    }

    #[test]
    fn categorical_neighbor_never_same() {
        let space = ConfigSpace::builder()
            .categorical("c", &["a", "b", "c", "d"])
            .build();
        let cfg = Config::new(vec![ParamValue::Cat(2)]);
        let mut rng = Rng::seed_from(15);
        for _ in 0..100 {
            let nb = space.neighbor(&cfg, &mut rng);
            assert_ne!(nb.get(0).as_cat(), 2);
            assert!(nb.get(0).as_cat() < 4);
        }
    }

    #[test]
    fn validate_catches_errors() {
        let space = demo_space();
        let mut rng = Rng::seed_from(16);
        let cfg = space.sample(&mut rng);

        let short = Config::new(cfg.values()[..3].to_vec());
        assert!(matches!(
            space.validate(&short),
            Err(SpaceError::ArityMismatch { .. })
        ));

        let wrong_type = cfg.with(0, ParamValue::Float(1.0));
        assert!(matches!(
            space.validate(&wrong_type),
            Err(SpaceError::TypeMismatch { .. })
        ));

        let oob = cfg.with(0, ParamValue::Int(999));
        assert!(matches!(
            space.validate(&oob),
            Err(SpaceError::OutOfBounds { .. })
        ));

        let bad_cat = cfg.with(4, ParamValue::Cat(7));
        assert!(matches!(
            space.validate(&bad_cat),
            Err(SpaceError::OutOfBounds { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_panic() {
        ConfigSpace::builder().int("x", 0, 1).boolean("x").build();
    }

    #[test]
    fn index_and_value_lookup() {
        let space = demo_space();
        assert_eq!(space.index_of("policy"), Some(4));
        assert_eq!(space.index_of("nope"), None);
        let mut rng = Rng::seed_from(17);
        let cfg = space.sample(&mut rng);
        let v = space.value_of(&cfg, "workers");
        assert!(matches!(v, ParamValue::Int(_)));
    }
}
