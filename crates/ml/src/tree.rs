//! CART regression trees with variance-reduction splits.
//!
//! The building block of the random forest. Splits minimize the weighted
//! sum of squared errors of the two children; candidate features can be
//! subsampled per split (the `max_features` knob that decorrelates forest
//! members).

use crate::{check_xy, MlError};
use tuna_stats::rng::Rng;

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum samples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Number of candidate features per split; `None` means all.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 24,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        value: f64,
        n: usize,
    },
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    n_features: usize,
    /// Total SSE reduction attributed to each feature (for importances).
    feature_gains: Vec<f64>,
}

impl RegressionTree {
    /// Fits a tree to `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the training set is empty or ragged.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        params: TreeParams,
        rng: &mut Rng,
    ) -> Result<Self, MlError> {
        let (_, cols) = check_xy(x, y)?;
        let mut tree = RegressionTree {
            params,
            nodes: Vec::new(),
            n_features: cols,
            feature_gains: vec![0.0; cols],
        };
        let mut indices: Vec<usize> = (0..x.len()).collect();
        tree.build(x, y, &mut indices, 0, rng);
        Ok(tree)
    }

    /// Recursively builds the subtree over `indices`, returning its node id.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let n = indices.len();
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n as f64;

        let must_leaf = depth >= self.params.max_depth
            || n < self.params.min_samples_split
            || n < 2 * self.params.min_samples_leaf;
        if !must_leaf {
            if let Some((feature, threshold, gain, split_at)) = self.best_split(x, y, indices, rng)
            {
                self.feature_gains[feature] += gain;
                // Partition indices in place around the found threshold.
                indices.sort_by(|&a, &b| x[a][feature].total_cmp(&x[b][feature]));
                let (left_idx, right_idx) = indices.split_at_mut(split_at);
                let node_id = self.nodes.len();
                self.nodes.push(Node::Leaf { value: mean, n }); // Placeholder.
                let left = self.build(x, y, left_idx, depth + 1, rng);
                let right = self.build(x, y, right_idx, depth + 1, rng);
                self.nodes[node_id] = Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                };
                return node_id;
            }
        }
        let node_id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean, n });
        node_id
    }

    /// Finds the best (feature, threshold) split by SSE reduction.
    ///
    /// Returns `(feature, threshold, gain, left_count)` or `None` when no
    /// split satisfies the leaf-size constraint or improves the SSE.
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[f64],
        indices: &[usize],
        rng: &mut Rng,
    ) -> Option<(usize, f64, f64, usize)> {
        let n = indices.len();
        let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;
        if parent_sse <= 1e-12 {
            return None; // Pure node.
        }

        let k = self
            .params
            .max_features
            .unwrap_or(self.n_features)
            .clamp(1, self.n_features);
        let features = if k == self.n_features {
            (0..self.n_features).collect::<Vec<_>>()
        } else {
            rng.sample_indices(self.n_features, k)
        };

        let min_leaf = self.params.min_samples_leaf;
        let mut best: Option<(usize, f64, f64, usize)> = None;
        let mut order: Vec<usize> = indices.to_vec();
        for &f in &features {
            order.sort_by(|&a, &b| x[a][f].total_cmp(&x[b][f]));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for pos in 0..n - 1 {
                let yi = y[order[pos]];
                left_sum += yi;
                left_sq += yi * yi;
                let left_n = pos + 1;
                let right_n = n - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let xv = x[order[pos]][f];
                let xn = x[order[pos + 1]][f];
                if xn <= xv {
                    continue; // Tied feature values cannot separate here.
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / left_n as f64;
                let right_sse = right_sq - right_sum * right_sum / right_n as f64;
                let gain = parent_sse - left_sse - right_sse;
                if gain > best.map_or(1e-12, |b| b.2) {
                    best = Some((f, 0.5 * (xv + xn), gain, left_n));
                }
            }
        }
        best
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the training width.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value, .. } => return *value,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (internal + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (root-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Per-feature total SSE reduction (unnormalized importances).
    pub fn feature_gains(&self) -> &[f64] {
        &self.feature_gains
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 0 for x < 0.5, y = 10 for x >= 0.5.
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 0.5 { 0.0 } else { 10.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function_exactly() {
        let (xs, ys) = step_data();
        let mut rng = Rng::seed_from(1);
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        assert_eq!(t.predict(&[0.2]), 0.0);
        assert_eq!(t.predict(&[0.9]), 10.0);
        // One split suffices for a pure step.
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn constant_target_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.5; 50];
        let mut rng = Rng::seed_from(2);
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[17.0]), 3.5);
    }

    #[test]
    fn respects_max_depth() {
        let mut rng = Rng::seed_from(3);
        let xs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(t.depth() <= 3, "depth {}", t.depth());
        assert!(t.leaf_count() <= 8);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let mut rng = Rng::seed_from(4);
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let t = RegressionTree::fit(
            &xs,
            &ys,
            TreeParams {
                min_samples_leaf: 16,
                ..TreeParams::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(t.leaf_count() <= 4);
    }

    #[test]
    fn picks_informative_feature() {
        // Feature 1 is pure noise; feature 0 fully determines y.
        let mut rng = Rng::seed_from(5);
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 2) as f64, rng.next_f64()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 100.0).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        assert!(t.feature_gains()[0] > t.feature_gains()[1] * 10.0);
    }

    #[test]
    fn prediction_interpolates_training_means() {
        let (xs, ys) = step_data();
        let mut rng = Rng::seed_from(6);
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        for x in &xs {
            let p = t.predict(x);
            assert!((0.0..=10.0).contains(&p));
        }
    }

    #[test]
    fn rejects_bad_input() {
        let mut rng = Rng::seed_from(7);
        assert!(matches!(
            RegressionTree::fit(&[], &[], TreeParams::default(), &mut rng),
            Err(MlError::EmptyTrainingSet)
        ));
        assert!(matches!(
            RegressionTree::fit(
                &[vec![1.0], vec![2.0]],
                &[1.0],
                TreeParams::default(),
                &mut rng
            ),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            RegressionTree::fit(
                &[vec![1.0], vec![2.0, 3.0]],
                &[1.0, 2.0],
                TreeParams::default(),
                &mut rng
            ),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn single_sample_is_leaf() {
        let mut rng = Rng::seed_from(8);
        let t = RegressionTree::fit(&[vec![1.0, 2.0]], &[5.0], TreeParams::default(), &mut rng)
            .unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[0.0, 0.0]), 5.0);
    }

    #[test]
    fn duplicate_feature_values_handled() {
        // All x identical: no valid split exists.
        let xs = vec![vec![1.0]; 10];
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let mut rng = Rng::seed_from(9);
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[1.0]) - 4.5).abs() < 1e-12);
    }
}
