//! `Standardize ∘ Regressor` composition.
//!
//! Algorithm 1 of the paper defines the noise-adjuster model as
//! `RandomForestRegressor ∘ Standardize`; [`StandardizedRegressor`] is that
//! composition for any [`Regressor`].

use crate::{MlError, Regressor};
use tuna_stats::rng::Rng;
use tuna_stats::scaler::StandardScaler;

/// Wraps a regressor with input standardization fitted at training time.
#[derive(Debug, Clone)]
pub struct StandardizedRegressor<M: Regressor> {
    inner: M,
    scaler: Option<StandardScaler>,
}

impl<M: Regressor> StandardizedRegressor<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        StandardizedRegressor {
            inner,
            scaler: None,
        }
    }

    /// Whether the pipeline has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn scale_row(&self, x: &[f64]) -> Vec<f64> {
        let scaler = self.scaler.as_ref().expect("predict on unfitted pipeline");
        let mut row = x.to_vec();
        scaler.transform_row(&mut row);
        row
    }
}

impl<M: Regressor> Regressor for StandardizedRegressor<M> {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], rng: &mut Rng) -> Result<(), MlError> {
        if x.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        let scaler = StandardScaler::fit(x);
        let xt = scaler.transform(x);
        self.inner.fit(&xt, y, rng)?;
        self.scaler = Some(scaler);
        Ok(())
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.inner.predict(&self.scale_row(x))
    }

    fn predict_with_uncertainty(&self, x: &[f64]) -> (f64, f64) {
        self.inner.predict_with_uncertainty(&self.scale_row(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestParams, RandomForest};

    #[test]
    fn standardized_forest_learns_despite_scale_mismatch() {
        // Feature scales differ by 6 orders of magnitude.
        let mut rng = Rng::seed_from(55);
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.next_f64() * 1e6, rng.next_f64() * 1e-3])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] / 1e6 + x[1] / 1e-3).collect();
        let mut model = StandardizedRegressor::new(RandomForest::new(ForestParams::default()));
        model.fit(&xs, &ys, &mut Rng::seed_from(1)).unwrap();
        let pred = model.predict(&[5e5, 5e-4]);
        assert!((pred - 1.0).abs() < 0.25, "pred {pred}");
    }

    #[test]
    fn empty_fit_rejected() {
        let mut model = StandardizedRegressor::new(RandomForest::new(ForestParams::default()));
        assert!(matches!(
            model.fit(&[], &[], &mut Rng::seed_from(1)),
            Err(MlError::EmptyTrainingSet)
        ));
        assert!(!model.is_fitted());
    }

    #[test]
    #[should_panic(expected = "unfitted pipeline")]
    fn predict_unfitted_panics() {
        let model = StandardizedRegressor::new(RandomForest::new(ForestParams::default()));
        model.predict(&[1.0]);
    }

    #[test]
    fn uncertainty_passes_through() {
        let mut rng = Rng::seed_from(56);
        let xs: Vec<Vec<f64>> = (0..100).map(|_| vec![rng.next_f64()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let mut model = StandardizedRegressor::new(RandomForest::new(ForestParams::default()));
        model.fit(&xs, &ys, &mut Rng::seed_from(2)).unwrap();
        let (m, v) = model.predict_with_uncertainty(&[0.5]);
        assert!(m.is_finite() && v >= 0.0);
    }
}
