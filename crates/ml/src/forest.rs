//! Bagged random-forest regression.
//!
//! Serves two roles in the reproduction: the surrogate model of the
//! SMAC-style optimizer (mean + across-tree variance drive expected
//! improvement) and the paper's noise-adjuster model (Algorithm 1), chosen
//! there because forests generalize from little data, select informative
//! features implicitly, and are cheap to refit on every new observation.

use crate::tree::{RegressionTree, TreeParams};
use crate::{check_xy, MlError, Regressor};
use tuna_stats::rng::Rng;

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureSubsample {
    /// All features (bagging only).
    All,
    /// `sqrt(n_features)`, the classification-style default.
    Sqrt,
    /// `n_features / 3`, the regression-style default.
    Third,
    /// An explicit count.
    Fixed(usize),
}

impl FeatureSubsample {
    fn resolve(&self, n_features: usize) -> Option<usize> {
        let k = match self {
            FeatureSubsample::All => return None,
            FeatureSubsample::Sqrt => (n_features as f64).sqrt().round() as usize,
            FeatureSubsample::Third => n_features / 3,
            FeatureSubsample::Fixed(k) => *k,
        };
        Some(k.clamp(1, n_features))
    }
}

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Whether each tree sees a bootstrap resample of the data.
    pub bootstrap: bool,
    /// Per-split feature subsampling policy.
    pub feature_subsample: FeatureSubsample,
    /// Per-tree parameters.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 48,
            bootstrap: true,
            feature_subsample: FeatureSubsample::Third,
            tree: TreeParams {
                min_samples_leaf: 2,
                ..TreeParams::default()
            },
        }
    }
}

/// A fitted (or not-yet-fitted) random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: ForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Whether [`Regressor::fit`] has been called successfully.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// The fitted trees.
    pub fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Normalized feature importances (sum to 1 unless all gains are zero).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut gains = vec![0.0; self.n_features];
        for t in &self.trees {
            for (g, tg) in gains.iter_mut().zip(t.feature_gains()) {
                *g += tg;
            }
        }
        let total: f64 = gains.iter().sum();
        if total > 0.0 {
            for g in &mut gains {
                *g /= total;
            }
        }
        gains
    }

    /// Predicts mean and across-tree variance for one row.
    ///
    /// The variance is the empirical variance of individual tree
    /// predictions — the epistemic-uncertainty proxy SMAC uses for EI.
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_stats(&self, row: &[f64]) -> (f64, f64) {
        assert!(self.is_fitted(), "predict on unfitted forest");
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(row)).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = if preds.len() < 2 {
            0.0
        } else {
            preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / (n - 1.0)
        };
        (mean, var)
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], rng: &mut Rng) -> Result<(), MlError> {
        let (rows, cols) = check_xy(x, y)?;
        if self.params.n_trees == 0 {
            return Err(MlError::InvalidHyperparameter("n_trees = 0".into()));
        }
        self.n_features = cols;
        let tree_params = TreeParams {
            max_features: self.params.feature_subsample.resolve(cols),
            ..self.params.tree
        };
        self.trees.clear();
        let mut boot_x: Vec<Vec<f64>> = Vec::with_capacity(rows);
        let mut boot_y: Vec<f64> = Vec::with_capacity(rows);
        for t in 0..self.params.n_trees {
            let mut tree_rng = rng.fork(t as u64);
            let tree = if self.params.bootstrap {
                boot_x.clear();
                boot_y.clear();
                for _ in 0..rows {
                    let i = tree_rng.below(rows);
                    boot_x.push(x[i].clone());
                    boot_y.push(y[i]);
                }
                RegressionTree::fit(&boot_x, &boot_y, tree_params, &mut tree_rng)?
            } else {
                RegressionTree::fit(x, y, tree_params, &mut tree_rng)?
            };
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.predict_stats(row).0
    }

    fn predict_with_uncertainty(&self, row: &[f64]) -> (f64, f64) {
        self.predict_stats(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn friedman_like(n: usize, noise: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed_from(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.next_f64()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                10.0 * (std::f64::consts::PI * x[0] * x[1]).sin()
                    + 20.0 * (x[2] - 0.5).powi(2)
                    + noise * rng.next_gaussian()
            })
            .collect();
        (xs, ys)
    }

    #[test]
    fn beats_mean_predictor_on_nonlinear_data() {
        let (xs, ys) = friedman_like(400, 0.5, 31);
        let (tx, ty) = friedman_like(200, 0.0, 32);
        let mut rf = RandomForest::new(ForestParams::default());
        rf.fit(&xs, &ys, &mut Rng::seed_from(1)).unwrap();

        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mse_rf: f64 = tx
            .iter()
            .zip(&ty)
            .map(|(x, y)| (rf.predict(x) - y).powi(2))
            .sum::<f64>()
            / ty.len() as f64;
        let mse_mean: f64 = ty.iter().map(|y| (y_mean - y).powi(2)).sum::<f64>() / ty.len() as f64;
        assert!(
            mse_rf < mse_mean / 3.0,
            "rf mse {mse_rf} vs mean mse {mse_mean}"
        );
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let (xs, ys) = friedman_like(100, 0.2, 33);
        let mut a = RandomForest::new(ForestParams::default());
        let mut b = RandomForest::new(ForestParams::default());
        a.fit(&xs, &ys, &mut Rng::seed_from(5)).unwrap();
        b.fit(&xs, &ys, &mut Rng::seed_from(5)).unwrap();
        let probe = vec![0.3, 0.6, 0.1, 0.9];
        assert_eq!(a.predict(&probe), b.predict(&probe));
    }

    #[test]
    fn uncertainty_reflects_tree_disagreement() {
        // Many duplicated points at x = 0 (every tree learns the same leaf)
        // versus sparse points on a steep sine in [0.5, 1] (trees place
        // splits differently): across-tree variance must separate the two.
        let mut rng = Rng::seed_from(34);
        let mut xs: Vec<Vec<f64>> = (0..200).map(|_| vec![0.0]).collect();
        let mut ys: Vec<f64> = vec![0.0; 200];
        for _ in 0..50 {
            let x = 0.5 + rng.next_f64() * 0.5;
            xs.push(vec![x]);
            ys.push((x * 20.0).sin() * 5.0);
        }
        let mut rf = RandomForest::new(ForestParams {
            n_trees: 64,
            ..ForestParams::default()
        });
        rf.fit(&xs, &ys, &mut Rng::seed_from(2)).unwrap();
        let (_, var_certain) = rf.predict_stats(&[0.0]);
        let (_, var_uncertain) = rf.predict_stats(&[0.75]);
        assert!(
            var_uncertain > var_certain * 10.0,
            "certain {var_certain} uncertain {var_uncertain}"
        );
    }

    #[test]
    fn predictions_within_target_range() {
        let (xs, ys) = friedman_like(200, 0.0, 35);
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut rf = RandomForest::new(ForestParams::default());
        rf.fit(&xs, &ys, &mut Rng::seed_from(3)).unwrap();
        let mut rng = Rng::seed_from(36);
        for _ in 0..100 {
            let probe: Vec<f64> = (0..4).map(|_| rng.next_f64()).collect();
            let p = rf.predict(&probe);
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn importances_identify_signal_features() {
        let mut rng = Rng::seed_from(37);
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect();
        // Only feature 1 matters.
        let ys: Vec<f64> = xs.iter().map(|x| 50.0 * x[1]).collect();
        let mut rf = RandomForest::new(ForestParams {
            feature_subsample: FeatureSubsample::All,
            ..ForestParams::default()
        });
        rf.fit(&xs, &ys, &mut Rng::seed_from(4)).unwrap();
        let imp = rf.feature_importances();
        assert!(imp[1] > 0.8, "importances {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_trees_rejected() {
        let mut rf = RandomForest::new(ForestParams {
            n_trees: 0,
            ..ForestParams::default()
        });
        let err = rf
            .fit(&[vec![1.0]], &[1.0], &mut Rng::seed_from(1))
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperparameter(_)));
    }

    #[test]
    #[should_panic(expected = "unfitted")]
    fn predict_before_fit_panics() {
        RandomForest::new(ForestParams::default()).predict(&[1.0]);
    }

    #[test]
    fn single_row_training() {
        let mut rf = RandomForest::new(ForestParams::default());
        rf.fit(&[vec![1.0, 2.0]], &[7.0], &mut Rng::seed_from(1))
            .unwrap();
        assert_eq!(rf.predict(&[0.0, 0.0]), 7.0);
        let (_, var) = rf.predict_stats(&[0.0, 0.0]);
        assert_eq!(var, 0.0);
    }

    #[test]
    fn feature_subsample_resolution() {
        assert_eq!(FeatureSubsample::All.resolve(10), None);
        assert_eq!(FeatureSubsample::Sqrt.resolve(9), Some(3));
        assert_eq!(FeatureSubsample::Third.resolve(9), Some(3));
        assert_eq!(FeatureSubsample::Third.resolve(2), Some(1));
        assert_eq!(FeatureSubsample::Fixed(100).resolve(5), Some(5));
        assert_eq!(FeatureSubsample::Fixed(0).resolve(5), Some(1));
    }
}
