//! Exact Gaussian-process regression.
//!
//! Implements the OtterTune-style GP optimizer substrate of §6.6: an exact
//! GP with RBF or Matérn-5/2 kernel, fitted by Cholesky factorization of
//! `K + sigma_n^2 I`, with hyperparameters selected by maximizing the log
//! marginal likelihood over a small grid (robust and dependency-free, at
//! the observation counts a tuning run produces).

use crate::linalg::{Cholesky, Matrix};
use crate::{check_xy, MlError, Regressor};
use tuna_stats::rng::Rng;

/// Stationary covariance kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Squared-exponential: `s^2 * exp(-r^2 / (2 l^2))`.
    Rbf {
        /// Lengthscale `l`.
        lengthscale: f64,
        /// Signal variance `s^2`.
        signal_var: f64,
    },
    /// Matérn-5/2: the default in most BO systems — once-differentiable
    /// sample paths match real response surfaces better than RBF.
    Matern52 {
        /// Lengthscale `l`.
        lengthscale: f64,
        /// Signal variance `s^2`.
        signal_var: f64,
    },
}

impl Kernel {
    /// Covariance between two points.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let r2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>();
        match self {
            Kernel::Rbf {
                lengthscale,
                signal_var,
            } => signal_var * (-r2 / (2.0 * lengthscale * lengthscale)).exp(),
            Kernel::Matern52 {
                lengthscale,
                signal_var,
            } => {
                let r = r2.sqrt() / lengthscale;
                let sqrt5r = 5.0_f64.sqrt() * r;
                signal_var * (1.0 + sqrt5r + 5.0 * r * r / 3.0) * (-sqrt5r).exp()
            }
        }
    }

    /// Variance at zero distance.
    pub fn signal_var(&self) -> f64 {
        match self {
            Kernel::Rbf { signal_var, .. } | Kernel::Matern52 { signal_var, .. } => *signal_var,
        }
    }

    fn with_params(&self, lengthscale: f64, signal_var: f64) -> Kernel {
        match self {
            Kernel::Rbf { .. } => Kernel::Rbf {
                lengthscale,
                signal_var,
            },
            Kernel::Matern52 { .. } => Kernel::Matern52 {
                lengthscale,
                signal_var,
            },
        }
    }
}

/// Gaussian-process regression model.
///
/// Targets are internally standardized (zero mean, unit variance) so the
/// default hyperparameter grid is scale-free.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: Kernel,
    noise_var: f64,
    /// Fitted state.
    train_x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Cholesky>,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Creates an unfitted GP with the given kernel and observation noise
    /// variance (in standardized-target units).
    ///
    /// # Errors
    ///
    /// Rejects non-positive noise variance.
    pub fn new(kernel: Kernel, noise_var: f64) -> Result<Self, MlError> {
        if !noise_var.is_finite() || noise_var <= 0.0 {
            return Err(MlError::InvalidHyperparameter(format!(
                "noise_var = {noise_var}"
            )));
        }
        Ok(GaussianProcess {
            kernel,
            noise_var,
            train_x: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            y_mean: 0.0,
            y_std: 1.0,
        })
    }

    /// Whether the model has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.chol.is_some()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Fits with the current hyperparameters.
    fn fit_fixed(&mut self, x: &[Vec<f64>], y_std: &[f64]) -> Result<f64, MlError> {
        let n = x.len();
        let mut k = Matrix::from_fn(n, n, |i, j| self.kernel.eval(&x[i], &x[j]));
        k.add_diagonal(self.noise_var + 1e-10);
        let chol = Cholesky::factor(&k)?;
        let alpha = chol.solve(y_std);
        // Log marginal likelihood: -0.5 y^T alpha - 0.5 log|K| - n/2 log(2pi).
        let fit_term: f64 = y_std.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        self.train_x = x.to_vec();
        self.alpha = alpha;
        self.chol = Some(chol);
        Ok(lml)
    }

    /// Fits the GP, selecting lengthscale / signal variance / noise variance
    /// by log-marginal-likelihood over a coarse grid.
    ///
    /// # Errors
    ///
    /// Propagates shape errors; falls back to the most-jittered grid point
    /// if every candidate is numerically non-positive-definite.
    pub fn fit_with_hyperopt(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<(), MlError> {
        check_xy(x, y)?;
        let (y_std_vals, mean, std) = standardize_targets(y);
        self.y_mean = mean;
        self.y_std = std;

        let lengthscales = [0.05, 0.1, 0.2, 0.5, 1.0, 2.0];
        let signal_vars = [0.5, 1.0, 2.0];
        let noise_vars = [1e-4, 1e-2, 0.1];

        let mut best: Option<(f64, Kernel, f64)> = None;
        for &l in &lengthscales {
            for &s in &signal_vars {
                for &nv in &noise_vars {
                    let mut candidate = GaussianProcess {
                        kernel: self.kernel.with_params(l, s),
                        noise_var: nv,
                        train_x: Vec::new(),
                        alpha: Vec::new(),
                        chol: None,
                        y_mean: mean,
                        y_std: std,
                    };
                    if let Ok(lml) = candidate.fit_fixed(x, &y_std_vals) {
                        if best.as_ref().is_none_or(|(b, _, _)| lml > *b) {
                            best = Some((lml, candidate.kernel, nv));
                        }
                    }
                }
            }
        }
        let (_, kernel, noise) = best.ok_or(MlError::NotPositiveDefinite)?;
        self.kernel = kernel;
        self.noise_var = noise;
        self.fit_fixed(x, &y_std_vals)?;
        Ok(())
    }

    /// Posterior mean and variance at `row` (in original target units).
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn predict_stats(&self, row: &[f64]) -> (f64, f64) {
        let chol = self.chol.as_ref().expect("predict on unfitted GP");
        let k_star: Vec<f64> = self
            .train_x
            .iter()
            .map(|x| self.kernel.eval(x, row))
            .collect();
        let mean_std: f64 = k_star.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        let v = chol.solve_lower(&k_star);
        let var_std = (self.kernel.signal_var() - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (
            self.y_mean + self.y_std * mean_std,
            var_std * self.y_std * self.y_std,
        )
    }

    /// Log marginal likelihood of the fitted model (standardized units).
    ///
    /// # Panics
    ///
    /// Panics if called before fitting.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let chol = self.chol.as_ref().expect("LML on unfitted GP");
        let n = self.train_x.len();
        // Recover y_std via K alpha (K = L L^T).
        let ktimes = {
            let mut k = Matrix::from_fn(n, n, |i, j| {
                self.kernel.eval(&self.train_x[i], &self.train_x[j])
            });
            k.add_diagonal(self.noise_var + 1e-10);
            k.matvec(&self.alpha)
        };
        let fit_term: f64 = ktimes.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        -0.5 * fit_term - 0.5 * chol.log_det() - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln()
    }
}

fn standardize_targets(y: &[f64]) -> (Vec<f64>, f64, f64) {
    let n = y.len() as f64;
    let mean = y.iter().sum::<f64>() / n;
    let var = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = if var.sqrt() < 1e-12 { 1.0 } else { var.sqrt() };
    (y.iter().map(|v| (v - mean) / std).collect(), mean, std)
}

impl Regressor for GaussianProcess {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64], _rng: &mut Rng) -> Result<(), MlError> {
        self.fit_with_hyperopt(x, y)
    }

    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_stats(x).0
    }

    fn predict_with_uncertainty(&self, x: &[f64]) -> (f64, f64) {
        self.predict_stats(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_sine(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::TAU).sin() * 5.0 + 10.0)
            .collect();
        (xs, ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (xs, ys) = train_sine(20);
        let mut gp = GaussianProcess::new(
            Kernel::Rbf {
                lengthscale: 0.2,
                signal_var: 1.0,
            },
            1e-4,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let (m, _) = gp.predict_stats(x);
            assert!((m - y).abs() < 0.3, "at {x:?}: {m} vs {y}");
        }
    }

    #[test]
    fn generalizes_between_points() {
        let (xs, ys) = train_sine(40);
        let mut gp = GaussianProcess::new(
            Kernel::Matern52 {
                lengthscale: 0.2,
                signal_var: 1.0,
            },
            1e-4,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        let probe = vec![0.3125];
        let want = (0.3125 * std::f64::consts::TAU).sin() * 5.0 + 10.0;
        let (m, _) = gp.predict_stats(&probe);
        assert!((m - want).abs() < 0.5, "{m} vs {want}");
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (xs, ys) = train_sine(15);
        let mut gp = GaussianProcess::new(
            Kernel::Matern52 {
                lengthscale: 0.2,
                signal_var: 1.0,
            },
            1e-4,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        let (_, var_near) = gp.predict_stats(&[0.5]);
        let (_, var_far) = gp.predict_stats(&[3.0]);
        assert!(var_far > var_near * 5.0, "near {var_near} far {var_far}");
    }

    #[test]
    fn variance_nonnegative_everywhere() {
        let (xs, ys) = train_sine(25);
        let mut gp = GaussianProcess::new(
            Kernel::Rbf {
                lengthscale: 0.1,
                signal_var: 1.0,
            },
            1e-3,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        let mut x = -1.0;
        while x < 2.0 {
            let (_, v) = gp.predict_stats(&[x]);
            assert!(v >= 0.0, "negative variance at {x}");
            x += 0.03;
        }
    }

    #[test]
    fn kernel_matern_at_zero_distance_is_signal_var() {
        let k = Kernel::Matern52 {
            lengthscale: 0.5,
            signal_var: 2.5,
        };
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn kernel_decreases_with_distance() {
        for k in [
            Kernel::Rbf {
                lengthscale: 0.5,
                signal_var: 1.0,
            },
            Kernel::Matern52 {
                lengthscale: 0.5,
                signal_var: 1.0,
            },
        ] {
            let near = k.eval(&[0.0], &[0.1]);
            let far = k.eval(&[0.0], &[1.0]);
            assert!(near > far, "{k:?}");
        }
    }

    #[test]
    fn rejects_bad_noise() {
        assert!(GaussianProcess::new(
            Kernel::Rbf {
                lengthscale: 1.0,
                signal_var: 1.0
            },
            0.0
        )
        .is_err());
    }

    #[test]
    fn constant_targets_do_not_crash() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let ys = vec![5.0; 10];
        let mut gp = GaussianProcess::new(
            Kernel::Rbf {
                lengthscale: 0.3,
                signal_var: 1.0,
            },
            1e-3,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        let (m, _) = gp.predict_stats(&[0.5]);
        assert!((m - 5.0).abs() < 0.5);
    }

    #[test]
    fn lml_finite_after_fit() {
        let (xs, ys) = train_sine(12);
        let mut gp = GaussianProcess::new(
            Kernel::Matern52 {
                lengthscale: 0.2,
                signal_var: 1.0,
            },
            1e-3,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        assert!(gp.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn multidimensional_inputs() {
        let mut rng = Rng::seed_from(99);
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + x[1] - x[2]).collect();
        let mut gp = GaussianProcess::new(
            Kernel::Matern52 {
                lengthscale: 0.5,
                signal_var: 1.0,
            },
            1e-3,
        )
        .unwrap();
        gp.fit_with_hyperopt(&xs, &ys).unwrap();
        let (m, _) = gp.predict_stats(&[0.5, 0.5, 0.5]);
        assert!((m - 1.0).abs() < 0.4, "{m}");
    }
}
