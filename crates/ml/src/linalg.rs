//! Minimal dense linear algebra for Gaussian-process regression.
//!
//! Only what the GP needs: a row-major matrix, Cholesky factorization and
//! triangular solves. Sizes stay modest (hundreds of observations), so a
//! straightforward O(n^3) implementation is appropriate.

use crate::MlError;

/// Row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to the diagonal (jitter / noise term).
    pub fn add_diagonal(&mut self, v: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            let cur = self.get(i, i);
            self.set(i, i, cur + v);
        }
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *slot = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes `a` (symmetric positive definite) as `L L^T`.
    ///
    /// Returns [`MlError::NotPositiveDefinite`] when a pivot is
    /// non-positive, which for GP kernels signals insufficient jitter.
    pub fn factor(a: &Matrix) -> Result<Self, MlError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(MlError::ShapeMismatch {
                detail: format!("cholesky of {}x{}", a.rows(), a.cols()),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MlError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve dimension mismatch");
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (k, zk) in z.iter().enumerate().take(i) {
                sum -= self.l.get(i, k) * zk;
            }
            z[i] = sum / self.l.get(i, i);
        }
        z
    }

    /// Solves `L^T x = b` (back substitution).
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "solve dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l.get(k, i) * xk;
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solves `A x = b` where `A = L L^T`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log(det(A)) = 2 * sum(log(L_ii))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_stats::rng::Rng;

    fn random_spd(n: usize, rng: &mut Rng) -> Matrix {
        // B * B^T + n * I is SPD.
        let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64);
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let mut rng = Rng::seed_from(21);
        for n in [1usize, 2, 5, 12] {
            let a = random_spd(n, &mut rng);
            let ch = Cholesky::factor(&a).unwrap();
            let rec = ch.l().matmul(&ch.l().transpose());
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec.get(i, j) - a.get(i, j)).abs() < 1e-8,
                        "({i},{j}): {} vs {}",
                        rec.get(i, j),
                        a.get(i, j)
                    );
                }
            }
        }
    }

    #[test]
    fn cholesky_solve_matches_direct() {
        let mut rng = Rng::seed_from(22);
        let n = 8;
        let a = random_spd(n, &mut rng);
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        // [[1, 2], [2, 1]] has a negative eigenvalue.
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 1.0);
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            MlError::NotPositiveDefinite
        );
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::factor(&Matrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let mut a = Matrix::identity(3);
        a.set(0, 0, 2.0);
        a.set(1, 1, 3.0);
        a.set(2, 2, 4.0);
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - 24.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::seed_from(23);
        let a = Matrix::from_fn(4, 4, |_, _| rng.next_gaussian());
        let prod = a.matmul(&Matrix::identity(4));
        assert_eq!(prod, a);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(24);
        let a = Matrix::from_fn(3, 5, |_, _| rng.next_gaussian());
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
