//! Acquisition functions for Bayesian optimization.
//!
//! All functions are written for **minimization** (the optimizer crate
//! normalizes maximization objectives by negating); `best` is the incumbent
//! (lowest observed cost).

use tuna_stats::special::{normal_cdf, normal_pdf};

/// Expected improvement of a Gaussian posterior `(mean, std)` over the
/// incumbent `best`, with exploration bonus `xi >= 0`.
///
/// `EI(x) = (best - mean - xi) * Phi(z) + std * phi(z)` with
/// `z = (best - mean - xi) / std`. Returns `max(best - mean - xi, 0)` when
/// `std == 0`.
///
/// # Examples
///
/// ```
/// use tuna_ml::acquisition::expected_improvement;
/// // A candidate predicted well below the incumbent with some
/// // uncertainty has positive EI.
/// assert!(expected_improvement(5.0, 1.0, 10.0, 0.0) > 4.0);
/// // A candidate far above the incumbent with no uncertainty has none.
/// assert_eq!(expected_improvement(20.0, 0.0, 10.0, 0.0), 0.0);
/// ```
pub fn expected_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    debug_assert!(xi >= 0.0, "xi must be non-negative");
    let gap = best - mean - xi;
    if std <= 0.0 {
        return gap.max(0.0);
    }
    let z = gap / std;
    (gap * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
}

/// Probability that a Gaussian posterior improves on `best` by at least
/// `xi`.
pub fn probability_of_improvement(mean: f64, std: f64, best: f64, xi: f64) -> f64 {
    let gap = best - mean - xi;
    if std <= 0.0 {
        return if gap > 0.0 { 1.0 } else { 0.0 };
    }
    normal_cdf(gap / std)
}

/// Lower confidence bound `mean - kappa * std` (smaller is more promising
/// under minimization).
pub fn lower_confidence_bound(mean: f64, std: f64, kappa: f64) -> f64 {
    mean - kappa * std
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ei_nonnegative() {
        for mean in [-5.0, 0.0, 5.0, 50.0] {
            for std in [0.0, 0.1, 1.0, 10.0] {
                assert!(expected_improvement(mean, std, 1.0, 0.0) >= 0.0);
            }
        }
    }

    #[test]
    fn ei_increases_with_uncertainty_when_mean_worse() {
        // mean above incumbent: only uncertainty can produce improvement.
        let low = expected_improvement(12.0, 0.5, 10.0, 0.0);
        let high = expected_improvement(12.0, 3.0, 10.0, 0.0);
        assert!(high > low);
    }

    #[test]
    fn ei_decreases_as_mean_worsens() {
        let good = expected_improvement(8.0, 1.0, 10.0, 0.0);
        let bad = expected_improvement(11.0, 1.0, 10.0, 0.0);
        assert!(good > bad);
    }

    #[test]
    fn ei_zero_std_is_relu_gap() {
        assert_eq!(expected_improvement(7.0, 0.0, 10.0, 0.0), 3.0);
        assert_eq!(expected_improvement(12.0, 0.0, 10.0, 0.0), 0.0);
        assert_eq!(expected_improvement(7.0, 0.0, 10.0, 1.0), 2.0);
    }

    #[test]
    fn xi_discourages_marginal_improvements() {
        let no_xi = expected_improvement(9.9, 0.5, 10.0, 0.0);
        let with_xi = expected_improvement(9.9, 0.5, 10.0, 0.5);
        assert!(with_xi < no_xi);
    }

    #[test]
    fn poi_bounds_and_monotonicity() {
        let p = probability_of_improvement(9.0, 1.0, 10.0, 0.0);
        assert!(p > 0.5 && p < 1.0);
        assert_eq!(probability_of_improvement(9.0, 0.0, 10.0, 0.0), 1.0);
        assert_eq!(probability_of_improvement(11.0, 0.0, 10.0, 0.0), 0.0);
    }

    #[test]
    fn lcb_favors_uncertain_points() {
        assert!(lower_confidence_bound(10.0, 2.0, 1.0) < lower_confidence_bound(10.0, 0.5, 1.0));
    }
}
