//! Hand-rolled machine learning for the TUNA reproduction.
//!
//! The paper's repro band notes that Rust's BO/GP ecosystem is thin, so the
//! statistical core is implemented from scratch:
//!
//! - [`tree`]: CART regression trees (variance-reduction splits).
//! - [`forest`]: bagged random-forest regression with per-split feature
//!   subsampling — used both as the SMAC surrogate model and as the paper's
//!   noise-adjuster model (Algorithm 1).
//! - [`gp`]: exact Gaussian-process regression (RBF / Matérn-5/2 kernels,
//!   Cholesky solves, log-marginal-likelihood hyperparameter selection) —
//!   the OtterTune-style optimizer of §6.6.
//! - [`linalg`]: the small dense linear algebra the GP needs.
//! - [`acquisition`]: expected improvement and related acquisition
//!   functions.
//! - [`pipeline`]: `Standardize ∘ Regressor` composition mirroring
//!   Algorithm 1's `RandomForestRegressor ∘ Standardize`.
//!
//! # Examples
//!
//! ```
//! use tuna_ml::forest::{ForestParams, RandomForest};
//! use tuna_ml::Regressor;
//! use tuna_stats::rng::Rng;
//!
//! // Learn y = x0 + x1 from noisy data.
//! let mut rng = Rng::seed_from(7);
//! let xs: Vec<Vec<f64>> = (0..200)
//!     .map(|_| vec![rng.next_f64(), rng.next_f64()])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] + x[1]).collect();
//! let mut rf = RandomForest::new(ForestParams::default());
//! rf.fit(&xs, &ys, &mut Rng::seed_from(1)).unwrap();
//! let pred = rf.predict(&[0.5, 0.5]);
//! assert!((pred - 1.0).abs() < 0.2);
//! ```

pub mod acquisition;
pub mod forest;
pub mod gp;
pub mod linalg;
pub mod pipeline;
pub mod tree;

/// Error type shared by the ML fitters.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// No training rows were provided.
    EmptyTrainingSet,
    /// Rows have inconsistent widths, or `x`/`y` lengths differ.
    ShapeMismatch { detail: String },
    /// A matrix required to be positive definite was not.
    NotPositiveDefinite,
    /// A hyperparameter was out of range.
    InvalidHyperparameter(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "empty training set"),
            MlError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MlError::NotPositiveDefinite => write!(f, "matrix not positive definite"),
            MlError::InvalidHyperparameter(s) => write!(f, "invalid hyperparameter: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

/// A regression model that can be fit on a design matrix and queried
/// pointwise.
pub trait Regressor {
    /// Fits the model. `x` is row-major (samples × features).
    fn fit(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        rng: &mut tuna_stats::rng::Rng,
    ) -> Result<(), MlError>;

    /// Predicts the target for one feature row.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts mean and *epistemic* variance for one feature row.
    ///
    /// The default implementation returns zero variance; uncertainty-aware
    /// models (forests, GPs) override it.
    fn predict_with_uncertainty(&self, x: &[f64]) -> (f64, f64) {
        (self.predict(x), 0.0)
    }
}

/// Validates a design matrix / target pair, returning (rows, cols).
pub(crate) fn check_xy(x: &[Vec<f64>], y: &[f64]) -> Result<(usize, usize), MlError> {
    if x.is_empty() {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.len() != y.len() {
        return Err(MlError::ShapeMismatch {
            detail: format!("{} rows vs {} targets", x.len(), y.len()),
        });
    }
    let cols = x[0].len();
    if cols == 0 {
        return Err(MlError::ShapeMismatch {
            detail: "zero-width rows".to_string(),
        });
    }
    if let Some(bad) = x.iter().find(|r| r.len() != cols) {
        return Err(MlError::ShapeMismatch {
            detail: format!("row width {} != {}", bad.len(), cols),
        });
    }
    Ok((x.len(), cols))
}
