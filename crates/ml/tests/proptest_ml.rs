//! Property-based tests for the ML crate.

use proptest::prelude::*;
use tuna_ml::acquisition::{expected_improvement, probability_of_improvement};
use tuna_ml::forest::{ForestParams, RandomForest};
use tuna_ml::linalg::{Cholesky, Matrix};
use tuna_ml::tree::{RegressionTree, TreeParams};
use tuna_ml::Regressor;
use tuna_stats::rng::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs_random_spd(seed in any::<u64>(), n in 1usize..10) {
        let mut rng = Rng::seed_from(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64 + 1.0);
        let ch = Cholesky::factor(&a).unwrap();
        let rec = ch.l().matmul(&ch.l().transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn cholesky_solve_is_inverse(seed in any::<u64>(), n in 1usize..8) {
        let mut rng = Rng::seed_from(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.next_gaussian());
        let mut a = b.matmul(&b.transpose());
        a.add_diagonal(n as f64 + 1.0);
        let x_true: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let rhs = a.matvec(&x_true);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&rhs);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn tree_predictions_bounded_by_targets(seed in any::<u64>(), n in 5usize..60) {
        let mut rng = Rng::seed_from(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.next_f64(), rng.next_f64()]).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.next_gaussian() * 10.0).collect();
        let t = RegressionTree::fit(&xs, &ys, TreeParams::default(), &mut rng).unwrap();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for _ in 0..16 {
            let p = t.predict(&[rng.next_f64(), rng.next_f64()]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    #[test]
    fn forest_variance_nonnegative(seed in any::<u64>(), n in 5usize..40) {
        let mut rng = Rng::seed_from(seed);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.next_f64()]).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mut rf = RandomForest::new(ForestParams { n_trees: 8, ..ForestParams::default() });
        rf.fit(&xs, &ys, &mut rng).unwrap();
        for _ in 0..8 {
            let (_, v) = rf.predict_stats(&[rng.next_f64()]);
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn ei_nonnegative_everywhere(mean in -100.0f64..100.0, std in 0.0f64..50.0, best in -100.0f64..100.0, xi in 0.0f64..5.0) {
        prop_assert!(expected_improvement(mean, std, best, xi) >= 0.0);
    }

    #[test]
    fn ei_monotone_in_mean(std in 0.01f64..50.0, best in -10.0f64..10.0) {
        // Lower predicted cost => higher EI.
        let a = expected_improvement(best - 1.0, std, best, 0.0);
        let b = expected_improvement(best + 1.0, std, best, 0.0);
        prop_assert!(a >= b);
    }

    #[test]
    fn poi_is_probability(mean in -100.0f64..100.0, std in 0.0f64..50.0, best in -100.0f64..100.0) {
        let p = probability_of_improvement(mean, std, best, 0.0);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn forest_deterministic_given_seed(seed in any::<u64>()) {
        let mut data_rng = Rng::seed_from(seed);
        let xs: Vec<Vec<f64>> = (0..20).map(|_| vec![data_rng.next_f64()]).collect();
        let ys: Vec<f64> = (0..20).map(|_| data_rng.next_gaussian()).collect();
        let mut a = RandomForest::new(ForestParams { n_trees: 4, ..ForestParams::default() });
        let mut b = RandomForest::new(ForestParams { n_trees: 4, ..ForestParams::default() });
        a.fit(&xs, &ys, &mut Rng::seed_from(7)).unwrap();
        b.fit(&xs, &ys, &mut Rng::seed_from(7)).unwrap();
        prop_assert_eq!(a.predict(&[0.5]), b.predict(&[0.5]));
    }
}
