//! Guest-OS metric generation — the `psutil` substitute.
//!
//! §4.3 of the paper feeds "all available metrics from psutil" plus a
//! one-hot machine id into the noise-adjuster model. Our simulator
//! generates an equivalent metric vector whose values are *causally linked*
//! to the same interference latents that perturb measured performance:
//! a noisy neighbor that steals cache bandwidth both slows the SuT *and*
//! raises the guest's LLC-miss counters, so a model trained on the metrics
//! can explain away part of the performance noise — exactly the paper's
//! mechanism, with a knowable ground truth.
//!
//! # Examples
//!
//! ```
//! use tuna_cloudsim::{Machine, Region, VmSku};
//! use tuna_cloudsim::components::ComponentVec;
//! use tuna_metrics::{generate, MetricVector, SCHEMA};
//! use tuna_stats::rng::Rng;
//!
//! let root = Rng::seed_from(1);
//! let mut m = Machine::provision(0, &VmSku::d8s_v5(), &Region::westus2(), &root);
//! let demand = ComponentVec::new(0.5, 0.8, 0.4, 0.3, 0.2);
//! let snap = m.observe(&demand);
//! let metrics = generate(&snap, &demand, 1.0, &mut Rng::seed_from(2));
//! assert_eq!(metrics.values().len(), SCHEMA.len());
//! ```

use tuna_cloudsim::components::ComponentVec;
use tuna_cloudsim::machine::Snapshot;
use tuna_stats::rng::Rng;

/// Names of the generated guest metrics, in vector order.
pub const SCHEMA: [&str; 30] = [
    "cpu_user_pct",
    "cpu_system_pct",
    "cpu_idle_pct",
    "cpu_iowait_pct",
    "cpu_steal_pct",
    "ctx_switches_per_s",
    "interrupts_per_s",
    "soft_interrupts_per_s",
    "syscalls_per_s",
    "load_avg_1",
    "load_avg_5",
    "procs_running",
    "procs_blocked",
    "mem_used_pct",
    "mem_available_mb",
    "mem_cached_mb",
    "swap_used_mb",
    "page_faults_per_s",
    "major_faults_per_s",
    "mem_bw_util_pct",
    "llc_miss_rate",
    "llc_references_per_s",
    "disk_read_mb_s",
    "disk_write_mb_s",
    "disk_iops",
    "disk_util_pct",
    "disk_await_ms",
    "net_sent_mb_s",
    "net_recv_mb_s",
    "thread_create_us",
];

/// A generated guest-metric vector (aligned with [`SCHEMA`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVector {
    values: Vec<f64>,
}

impl MetricVector {
    /// Creates a vector; must match the schema width.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != SCHEMA.len()`.
    pub fn new(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), SCHEMA.len(), "metric width mismatch");
        MetricVector { values }
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the metric named `name`.
    pub fn get(&self, name: &str) -> Option<f64> {
        SCHEMA
            .iter()
            .position(|&n| n == name)
            .map(|i| self.values[i])
    }

    /// Consumes into the inner vector (feature row for the model).
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

/// Generates the guest-metric vector for one measurement epoch.
///
/// - `snapshot` is the machine observation for the epoch (its
///   `interference` latents drive the noise-correlated counters);
/// - `demand` is the SuT's per-component utilization;
/// - `relative_perf` is the achieved performance relative to nominal
///   (throughput-linked counters scale with it);
/// - `rng` adds small observation noise (counters are themselves sampled).
pub fn generate(
    snapshot: &Snapshot,
    demand: &ComponentVec,
    relative_perf: f64,
    rng: &mut Rng,
) -> MetricVector {
    let itf = &snapshot.interference;
    let perf = relative_perf.max(0.0);
    // Small multiplicative observation noise per counter.
    let mut obs = |x: f64| (x * (1.0 + 0.01 * rng.next_gaussian())).max(0.0);

    // CPU accounting: interference shows up as steal time; disk pressure as
    // iowait. Shares are percentages of total CPU time.
    let cpu_busy = (demand.cpu * 100.0).min(98.0);
    let steal = (-itf.cpu).max(0.0) * 2_000.0 + (1.0 - snapshot.speeds.cpu).max(0.0) * 300.0;
    let iowait = demand.disk * 8.0 + (-itf.disk).max(0.0) * 900.0;
    let user = cpu_busy * 0.72;
    let system = cpu_busy * 0.28 + (-itf.os).max(0.0) * 120.0;
    let idle = (100.0 - user - system - steal - iowait).max(0.0);

    // Scheduler / kernel counters: OS interference inflates context-switch
    // cost and visible kernel activity.
    let ctx = 9_000.0 * demand.cpu * perf * (1.0 + 2.0 * (-itf.os).max(0.0));
    let intr = 5_500.0 * (demand.disk + demand.cpu) * perf;
    let softirq = 2_200.0 * demand.cpu * perf;
    let syscalls = 40_000.0 * (demand.cpu + demand.os) * perf;
    let load1 = 8.0 * demand.cpu * (1.0 + 3.0 * (-itf.cpu).max(0.0)) + 2.0 * demand.disk;
    let load5 = load1 * 0.92;
    let procs_running = 1.0 + 7.0 * demand.cpu;
    let procs_blocked = 4.0 * demand.disk * (1.0 + 10.0 * (-itf.disk).max(0.0));

    // Memory: interference lowers achievable bandwidth and raises faults.
    let mem_used = (35.0 + 55.0 * demand.memory).min(99.0);
    let mem_available = 32_000.0 * (1.0 - mem_used / 100.0);
    let mem_cached = 12_000.0 * demand.disk.max(0.2);
    let swap_used = 900.0 * (demand.memory - 0.9).max(0.0);
    let faults = 20_000.0 * demand.memory * perf * (1.0 + 1.5 * (-itf.memory).max(0.0));
    let major_faults = 40.0 * demand.disk * (1.0 + 4.0 * (-itf.memory).max(0.0));
    let mem_bw_util = (demand.memory * 100.0 * (1.0 + 4.0 * (-itf.memory).max(0.0))).min(100.0);

    // Cache: the dominant interference channel; miss rate rises sharply
    // when a neighbor thrashes the shared LLC.
    let llc_miss = (0.08 + demand.cache * 0.10 + (-itf.cache).max(0.0) * 2.0).min(0.99);
    let llc_refs = 3.0e8 * (demand.cpu + demand.cache) * perf;

    // Disk: throughput counters scale with achieved performance; await
    // rises when the virtual disk is contended.
    let disk_read = 220.0 * demand.disk * perf * 0.4;
    let disk_write = 220.0 * demand.disk * perf * 0.6;
    let disk_iops = 11_000.0 * demand.disk * perf;
    let disk_util = (demand.disk * 100.0 / snapshot.speeds.disk.max(0.05)).min(100.0);
    let disk_await = 0.9 / snapshot.speeds.disk.max(0.05) * (1.0 + 6.0 * (-itf.disk).max(0.0));

    // Network: proportional to served work.
    let net_sent = 60.0 * perf * demand.cpu.max(0.1);
    let net_recv = 25.0 * perf * demand.cpu.max(0.1);

    // OS latency probe: thread-creation time grows with OS interference —
    // the paper's previously unmeasured variance source.
    let thread_create = 18.5 / snapshot.speeds.os.max(0.05);

    MetricVector::new(vec![
        obs(user),
        obs(system),
        obs(idle),
        obs(iowait),
        obs(steal),
        obs(ctx),
        obs(intr),
        obs(softirq),
        obs(syscalls),
        obs(load1),
        obs(load5),
        obs(procs_running),
        obs(procs_blocked),
        obs(mem_used),
        obs(mem_available),
        obs(mem_cached),
        obs(swap_used),
        obs(faults),
        obs(major_faults),
        obs(mem_bw_util),
        obs(llc_miss),
        obs(llc_refs),
        obs(disk_read),
        obs(disk_write),
        obs(disk_iops),
        obs(disk_util),
        obs(disk_await),
        obs(net_sent),
        obs(net_recv),
        obs(thread_create),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_cloudsim::{Machine, Region, VmSku};
    use tuna_stats::corr::pearson;
    use tuna_stats::rng::Rng;

    fn machine(seed: u64) -> Machine {
        Machine::provision(
            seed,
            &VmSku::d8s_v5(),
            &Region::westus2(),
            &Rng::seed_from(99),
        )
    }

    fn demand() -> ComponentVec {
        ComponentVec::new(0.6, 0.8, 0.5, 0.4, 0.3)
    }

    #[test]
    fn schema_width_and_names_unique() {
        let mut names = SCHEMA.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SCHEMA.len());
    }

    #[test]
    fn vector_width_matches_schema() {
        let mut m = machine(1);
        let snap = m.observe(&demand());
        let v = generate(&snap, &demand(), 1.0, &mut Rng::seed_from(2));
        assert_eq!(v.values().len(), SCHEMA.len());
        assert!(v.values().iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn get_by_name() {
        let mut m = machine(1);
        let snap = m.observe(&demand());
        let v = generate(&snap, &demand(), 1.0, &mut Rng::seed_from(2));
        assert!(v.get("cpu_user_pct").is_some());
        assert!(v.get("thread_create_us").is_some());
        assert!(v.get("nonexistent").is_none());
    }

    #[test]
    fn cache_interference_visible_in_llc_miss_rate() {
        // Correlation between the (latent) cache interference and the
        // (observable) LLC miss rate must be strongly negative: worse
        // interference (negative latent) raises the miss rate.
        let mut m = machine(3);
        let mut latents = Vec::new();
        let mut misses = Vec::new();
        let mut rng = Rng::seed_from(5);
        for _ in 0..600 {
            let snap = m.observe(&demand());
            let v = generate(&snap, &demand(), 1.0, &mut rng);
            latents.push(snap.interference.cache);
            misses.push(v.get("llc_miss_rate").unwrap());
        }
        let r = pearson(&latents, &misses);
        assert!(r < -0.5, "llc_miss_rate uncorrelated with latent: r={r}");
    }

    #[test]
    fn os_interference_visible_in_thread_create_time() {
        let mut m = machine(4);
        let mut latents = Vec::new();
        let mut created = Vec::new();
        let mut rng = Rng::seed_from(6);
        for _ in 0..600 {
            let snap = m.observe(&demand());
            let v = generate(&snap, &demand(), 1.0, &mut rng);
            latents.push(snap.interference.os);
            created.push(v.get("thread_create_us").unwrap());
        }
        let r = pearson(&latents, &created);
        assert!(r < -0.5, "thread_create_us uncorrelated: r={r}");
    }

    #[test]
    fn throughput_counters_scale_with_perf() {
        let mut m = machine(5);
        let snap = m.observe(&demand());
        let mut rng = Rng::seed_from(7);
        let hi = generate(&snap, &demand(), 1.5, &mut rng);
        let lo = generate(&snap, &demand(), 0.5, &mut rng);
        assert!(hi.get("disk_iops").unwrap() > lo.get("disk_iops").unwrap() * 2.0);
        assert!(hi.get("net_sent_mb_s").unwrap() > lo.get("net_sent_mb_s").unwrap() * 2.0);
    }

    #[test]
    fn idle_machine_mostly_idle() {
        let mut m = machine(6);
        let idle_demand = ComponentVec::uniform(0.02);
        let snap = m.observe(&idle_demand);
        let v = generate(&snap, &idle_demand, 0.1, &mut Rng::seed_from(8));
        assert!(v.get("cpu_idle_pct").unwrap() > 85.0);
        assert!(v.get("cpu_user_pct").unwrap() < 5.0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let mut m1 = machine(7);
        let mut m2 = machine(7);
        let s1 = m1.observe(&demand());
        let s2 = m2.observe(&demand());
        let a = generate(&s1, &demand(), 1.0, &mut Rng::seed_from(9));
        let b = generate(&s2, &demand(), 1.0, &mut Rng::seed_from(9));
        assert_eq!(a, b);
    }
}
