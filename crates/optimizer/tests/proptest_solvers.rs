//! Property tests: every registered solver survives hostile cost streams.
//!
//! The NaN-quarantine contract, checked across the whole registry:
//! interleaved finite / NaN / ±inf raw values must never panic any
//! solver, `best()` must be finite exactly when a finite observation
//! exists, and two same-seed runs must produce bit-identical ask/tell
//! streams even with non-finite tells in the middle.

use proptest::prelude::*;
use tuna_optimizer::solver::{SolverParams, SolverRegistry};
use tuna_optimizer::Objective;
use tuna_space::ConfigSpace;
use tuna_stats::rng::Rng;

fn space() -> ConfigSpace {
    ConfigSpace::builder()
        .float("x", 0.0, 1.0)
        .int("i", 0, 16)
        .build()
}

/// Tagged raw values: tags 0/1/2 inject NaN / +inf / -inf, the rest keep
/// the finite draw — so roughly a third of every stream is hostile.
fn raw_values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0u8..10, -100.0f64..100.0), 4..48).prop_map(|tagged| {
        tagged
            .into_iter()
            .map(|(tag, v)| match tag {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => v,
            })
            .collect()
    })
}

/// Drives one solver over the raw stream; returns the ask stream (config
/// id + budget per round), the reported best, and the observation count.
fn drive(
    name: &str,
    objective: Objective,
    values: &[f64],
    seed: u64,
) -> (Vec<(u64, usize)>, Option<f64>, usize) {
    let mut solver = SolverRegistry::builtin()
        .build(name, space(), objective, &SolverParams::default())
        .expect("registered name");
    let mut rng = Rng::seed_from(seed);
    let mut stream = Vec::with_capacity(values.len());
    for &raw in values {
        let s = solver.ask(&mut rng);
        stream.push((s.config.id().0, s.budget));
        solver.tell(&s.config, raw, s.budget);
    }
    let best = solver.best().map(|(_, v)| v);
    (stream, best, solver.n_observations())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn registered_solvers_survive_hostile_streams(values in raw_values(), seed in 1u64..1000) {
        let any_finite = values.iter().any(|v| v.is_finite());
        for name in SolverRegistry::builtin().names() {
            for objective in [Objective::Minimize, Objective::Maximize] {
                let (stream, best, n) = drive(name, objective, &values, seed);
                prop_assert_eq!(n, values.len(), "{} miscounted observations", name);
                match best {
                    Some(v) => prop_assert!(
                        v.is_finite() && any_finite,
                        "{} reported non-finite or phantom best {v}",
                        name
                    ),
                    None => prop_assert!(
                        !any_finite,
                        "{} lost its best despite finite observations",
                        name
                    ),
                }
                // Same seed, same stream — quarantining non-finite tells
                // must not desynchronize the RNG.
                let (replay, best2, _) = drive(name, objective, &values, seed);
                prop_assert_eq!(&stream, &replay, "{} ask stream diverged", name);
                prop_assert_eq!(
                    best.map(f64::to_bits),
                    best2.map(f64::to_bits),
                    "{} best diverged",
                    name
                );
            }
        }
    }
}
