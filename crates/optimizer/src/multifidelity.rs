//! Successive-Halving multi-fidelity intensification (§4.1).
//!
//! The paper associates the multi-fidelity *budget* of a config with the
//! number of nodes it is evaluated on: configs start on one node, promising
//! ones are promoted to a small set (e.g. 3) and eventually to the whole
//! cluster (e.g. 10), while poor configs are discarded cheaply.
//!
//! [`MultiFidelityOptimizer`] wraps any [`Proposer`] (random, SMAC, GP) with
//! an asynchronous Successive-Halving ladder: a config is promoted to the
//! next rung as soon as it ranks in the top `1/eta` of results completed at
//! its current rung. With a single-rung ladder it degenerates to the
//! traditional single-fidelity loop, which is exactly the paper's baseline.

use std::collections::{BTreeMap, BTreeSet};

use crate::history::History;
use crate::{Objective, Solver, Suggestion};
use tuna_space::{Config, ConfigId, ConfigSpace};
use tuna_stats::rng::Rng;

/// Proposes fresh configurations given the observation history.
pub trait Proposer {
    /// Returns the next configuration to try at the lowest budget.
    fn propose(&mut self, history: &History, space: &ConfigSpace, rng: &mut Rng) -> Config;
}

/// Budget ladder parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderParams {
    /// Strictly increasing budgets, e.g. `[1, 3, 10]`.
    pub budgets: Vec<usize>,
    /// Promotion ratio: top `1/eta` of a rung is promoted.
    pub eta: usize,
    /// Minimum completed results a rung needs before promotions happen.
    pub min_rung_size: usize,
}

impl LadderParams {
    /// The paper's configuration: rungs at 1, 3 and 10 nodes, eta = 3.
    pub fn paper_default() -> Self {
        LadderParams {
            budgets: vec![1, 3, 10],
            eta: 3,
            min_rung_size: 3,
        }
    }

    /// Single-fidelity ladder (budget 1 only) — the traditional baseline.
    pub fn single() -> Self {
        LadderParams {
            budgets: vec![1],
            eta: 3,
            min_rung_size: 1,
        }
    }

    /// Validates the ladder.
    ///
    /// # Panics
    ///
    /// Panics if budgets are empty, non-increasing, or eta < 2.
    pub fn validate(&self) {
        assert!(!self.budgets.is_empty(), "empty budget ladder");
        assert!(
            self.budgets.windows(2).all(|w| w[0] < w[1]),
            "budgets must strictly increase"
        );
        assert!(self.eta >= 2, "eta must be at least 2");
    }

    /// Maximum budget (cluster size).
    pub fn max_budget(&self) -> usize {
        *self.budgets.last().expect("non-empty ladder")
    }
}

#[derive(Debug, Clone, Default)]
struct Rung {
    /// Completed (config, cost) results at this rung.
    results: Vec<(ConfigId, f64)>,
    /// Configs already suggested for the *next* rung.
    promoted: BTreeSet<ConfigId>,
}

/// Any-proposer optimizer with an asynchronous Successive-Halving ladder.
#[derive(Debug, Clone)]
pub struct MultiFidelityOptimizer<P: Proposer> {
    space: ConfigSpace,
    objective: Objective,
    ladder: LadderParams,
    proposer: P,
    history: History,
    rungs: Vec<Rung>,
    configs: BTreeMap<ConfigId, Config>,
}

impl<P: Proposer> MultiFidelityOptimizer<P> {
    /// Creates a multi-fidelity optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is invalid.
    pub fn with_proposer(
        space: ConfigSpace,
        objective: Objective,
        ladder: LadderParams,
        proposer: P,
    ) -> Self {
        ladder.validate();
        let rungs = vec![Rung::default(); ladder.budgets.len()];
        MultiFidelityOptimizer {
            space,
            objective,
            ladder,
            proposer,
            history: History::new(),
            rungs,
            configs: BTreeMap::new(),
        }
    }

    /// The budget ladder.
    pub fn ladder(&self) -> &LadderParams {
        &self.ladder
    }

    /// The observation history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Immutable access to the proposer.
    pub fn proposer(&self) -> &P {
        &self.proposer
    }

    /// Finds a promotable config: the highest rung (preferring deeper
    /// rungs) with a completed result in the top `1/eta` not yet promoted.
    fn find_promotion(&mut self) -> Option<(usize, ConfigId)> {
        // Scan from the deepest promotable rung down so configs close to
        // max budget finish first (depth-first intensification).
        for r in (0..self.rungs.len().saturating_sub(1)).rev() {
            if self.rungs[r].results.len() < self.ladder.min_rung_size {
                continue;
            }
            let candidates: Vec<ConfigId> = {
                let rung = &self.rungs[r];
                // Non-finite results (diverged runs) count toward rung
                // occupancy but are never promotion candidates.
                let mut sorted: Vec<(ConfigId, f64)> = rung
                    .results
                    .iter()
                    .filter(|(_, cost)| cost.is_finite())
                    .copied()
                    .collect();
                sorted.sort_by(|a, b| crate::history::cost_cmp(a.1, b.1));
                let k = sorted.len().div_ceil(self.ladder.eta);
                sorted
                    .into_iter()
                    .take(k)
                    .map(|(id, _)| id)
                    .filter(|id| !rung.promoted.contains(id))
                    .collect()
            };
            if let Some(&id) = candidates.first() {
                return Some((r, id));
            }
        }
        None
    }

    fn rung_index(&self, budget: usize) -> Option<usize> {
        self.ladder.budgets.iter().position(|&b| b == budget)
    }
}

impl<P: Proposer> Solver for MultiFidelityOptimizer<P> {
    fn ask(&mut self, rng: &mut Rng) -> Suggestion {
        if let Some((rung_idx, id)) = self.find_promotion() {
            self.rungs[rung_idx].promoted.insert(id);
            let config = self.configs[&id].clone();
            return Suggestion {
                config,
                budget: self.ladder.budgets[rung_idx + 1],
            };
        }
        let config = self.proposer.propose(&self.history, &self.space, rng);
        Suggestion {
            config,
            budget: self.ladder.budgets[0],
        }
    }

    fn tell(&mut self, config: &Config, raw_value: f64, budget: usize) {
        let cost = self.objective.to_cost(raw_value);
        let id = config.id();
        self.configs.entry(id).or_insert_with(|| config.clone());
        self.history.push(config.clone(), cost, budget);
        if let Some(r) = self.rung_index(budget) {
            self.rungs[r].results.push((id, cost));
        }
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.history
            .best()
            .map(|rec| (rec.config.clone(), self.objective.from_cost(rec.cost)))
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn objective(&self) -> Objective {
        self.objective
    }

    fn n_observations(&self) -> usize {
        self.history.len()
    }
}

/// A [`Proposer`] that samples uniformly at random.
#[derive(Debug, Clone, Default)]
pub struct RandomProposer;

impl Proposer for RandomProposer {
    fn propose(&mut self, _history: &History, space: &ConfigSpace, rng: &mut Rng) -> Config {
        space.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    fn mf(ladder: LadderParams) -> MultiFidelityOptimizer<RandomProposer> {
        MultiFidelityOptimizer::with_proposer(space(), Objective::Minimize, ladder, RandomProposer)
    }

    /// Runs a synthetic loop where cost = x (lower x better) and returns
    /// every suggestion made.
    fn drive(opt: &mut MultiFidelityOptimizer<RandomProposer>, iters: usize) -> Vec<Suggestion> {
        let mut rng = Rng::seed_from(11);
        let mut out = Vec::new();
        for _ in 0..iters {
            let s = opt.ask(&mut rng);
            let x = s.config.get(0).as_float();
            opt.tell(&s.config, x, s.budget);
            out.push(s);
        }
        out
    }

    #[test]
    fn single_rung_never_promotes() {
        let mut opt = mf(LadderParams::single());
        let suggestions = drive(&mut opt, 50);
        assert!(suggestions.iter().all(|s| s.budget == 1));
        // Without promotion, every suggestion is a fresh config.
        assert_eq!(opt.history().n_configs(), 50);
    }

    #[test]
    fn promotions_follow_the_ladder() {
        let mut opt = mf(LadderParams::paper_default());
        let suggestions = drive(&mut opt, 120);
        let budgets: BTreeSet<usize> = suggestions.iter().map(|s| s.budget).collect();
        assert!(budgets.contains(&1));
        assert!(budgets.contains(&3), "no promotions to rung 3");
        assert!(budgets.contains(&10), "no promotions to max budget");
        // No budget outside the ladder.
        assert!(budgets.iter().all(|b| [1, 3, 10].contains(b)));
    }

    #[test]
    fn promoted_configs_were_good_at_previous_rung() {
        let mut opt = mf(LadderParams::paper_default());
        let mut rng = Rng::seed_from(13);
        let mut seen_costs: Vec<(ConfigId, f64)> = Vec::new();
        for _ in 0..150 {
            let s = opt.ask(&mut rng);
            let x = s.config.get(0).as_float();
            if s.budget == 3 {
                // Promotion from rung 0: the config's rung-0 cost must be
                // no worse than the rung-0 median at this point.
                let cost = seen_costs
                    .iter()
                    .find(|(id, _)| *id == s.config.id())
                    .map(|(_, c)| *c)
                    .expect("promoted config must have been seen");
                let mut costs: Vec<f64> = seen_costs.iter().map(|(_, c)| *c).collect();
                costs.sort_by(|a, b| a.total_cmp(b));
                let median = costs[costs.len() / 2];
                assert!(cost <= median + 1e-9, "promoted a bad config");
            }
            if s.budget == 1 {
                seen_costs.push((s.config.id(), x));
            }
            opt.tell(&s.config, x, s.budget);
        }
    }

    #[test]
    fn no_config_promoted_twice_from_same_rung() {
        let mut opt = mf(LadderParams::paper_default());
        let suggestions = drive(&mut opt, 200);
        let mut promoted_to_3: Vec<ConfigId> = suggestions
            .iter()
            .filter(|s| s.budget == 3)
            .map(|s| s.config.id())
            .collect();
        let before = promoted_to_3.len();
        promoted_to_3.sort();
        promoted_to_3.dedup();
        assert_eq!(before, promoted_to_3.len(), "duplicate promotion");
    }

    #[test]
    fn best_prefers_max_budget_tier() {
        let mut opt = mf(LadderParams::paper_default());
        let a = Config::new(vec![tuna_space::ParamValue::Float(0.9)]);
        let b = Config::new(vec![tuna_space::ParamValue::Float(0.1)]);
        opt.tell(&a, 0.9, 10);
        opt.tell(&b, 0.1, 1);
        // b is cheaper but only evaluated at budget 1; a is trusted.
        let (best, _) = opt.best().unwrap();
        assert_eq!(best, a);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn invalid_ladder_panics() {
        mf(LadderParams {
            budgets: vec![1, 1, 10],
            eta: 3,
            min_rung_size: 1,
        });
    }

    #[test]
    fn nan_tells_are_quarantined_not_promoted() {
        let mut opt = mf(LadderParams::paper_default());
        let mut rng = Rng::seed_from(17);
        let mut nan_ids = BTreeSet::new();
        for i in 0..120 {
            let s = opt.ask(&mut rng);
            if s.budget == 1 && i % 3 == 0 {
                // Every third fresh config diverges.
                nan_ids.insert(s.config.id());
                opt.tell(&s.config, f64::NAN, s.budget);
            } else {
                opt.tell(&s.config, s.config.get(0).as_float(), s.budget);
            }
        }
        // No diverged config was ever promoted past rung 0.
        for rung in &opt.rungs[1..] {
            for (id, _) in &rung.results {
                assert!(!nan_ids.contains(id), "promoted a NaN config");
            }
        }
        let (best, value) = opt.best().expect("finite observations exist");
        assert!(value.is_finite());
        assert!(!nan_ids.contains(&best.id()));
    }

    #[test]
    fn max_budget_accessor() {
        assert_eq!(LadderParams::paper_default().max_budget(), 10);
        assert_eq!(LadderParams::single().max_budget(), 1);
    }
}
