//! Black-box optimizers for system configuration tuning.
//!
//! The crate reproduces the optimizer layer of the paper's Figure 1 loop:
//!
//! - [`smac`]: SMAC-style Bayesian optimization — random-forest surrogate,
//!   expected-improvement acquisition over random + local-search candidates,
//!   interleaved random exploration. The paper's default optimizer.
//! - [`gp_opt`]: Gaussian-process Bayesian optimization, the
//!   OtterTune-style alternative evaluated in §6.6.
//! - [`random`]: pure random search (initialization and baseline).
//! - [`multifidelity`]: a Successive-Halving intensifier that turns any
//!   proposer into a multi-fidelity optimizer whose *budget is the number of
//!   nodes a config is evaluated on* (§4.1).
//! - [`tournament`]: DarwinGame-style tournament selection — configs play
//!   head-to-head matches, winners advance through a bracket.
//!
//! All optimizers speak the same [`Solver`] ask/tell interface so the
//! TUNA pipeline (and the baselines) can swap them freely, mirroring the
//! paper's "no changes to the underlying optimizer" design goal. The
//! [`solver`] module adds the declarative layer on top: a string-keyed
//! [`solver::SolverRegistry`] with per-solver [`solver::Capabilities`], so
//! arms name solvers (`"smac"`, `"gp"`, `"random"`, `"tournament"`)
//! instead of constructing concrete types.
//!
//! # Examples
//!
//! ```
//! use tuna_optimizer::{Objective, Optimizer};
//! use tuna_optimizer::smac::{SmacOptimizer, SmacParams};
//! use tuna_space::ConfigSpace;
//! use tuna_stats::rng::Rng;
//!
//! let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
//! let mut opt = SmacOptimizer::new(space.clone(), Objective::Minimize, SmacParams::default());
//! let mut rng = Rng::seed_from(0);
//! for _ in 0..20 {
//!     let s = opt.ask(&mut rng);
//!     let x = space.value_of(&s.config, "x").as_float();
//!     let cost = (x - 0.3) * (x - 0.3);
//!     opt.tell(&s.config, cost, s.budget);
//! }
//! let (best, _) = opt.best().unwrap();
//! assert!(space.validate(&best).is_ok());
//! ```

pub mod gp_opt;
pub mod history;
pub mod multifidelity;
pub mod random;
pub mod smac;
pub mod solver;
pub mod tournament;

pub use history::{cost_cmp, History, Observation};
pub use solver::{Capabilities, SolverId, SolverParams, SolverRegistry};

use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;

/// Direction of optimization.
///
/// Internally every optimizer minimizes *cost*; [`Objective`] converts
/// between the SuT's raw metric (throughput up, runtime down, ...) and cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Smaller raw values are better (runtime, latency).
    Minimize,
    /// Larger raw values are better (throughput).
    Maximize,
}

impl Objective {
    /// Converts a raw metric value into a cost to minimize.
    pub fn to_cost(&self, raw: f64) -> f64 {
        match self {
            Objective::Minimize => raw,
            Objective::Maximize => -raw,
        }
    }

    /// Converts a cost back into a raw metric value.
    pub fn from_cost(&self, cost: f64) -> f64 {
        match self {
            Objective::Minimize => cost,
            Objective::Maximize => -cost,
        }
    }

    /// Whether `a` is a better raw value than `b`.
    pub fn better(&self, a: f64, b: f64) -> bool {
        self.to_cost(a) < self.to_cost(b)
    }
}

/// A configuration the optimizer wants evaluated at a given budget.
///
/// The budget is the number of distinct nodes to sample the config on
/// (§4.1); single-fidelity optimizers always use budget 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The configuration to evaluate.
    pub config: Config,
    /// Evaluation budget (number of nodes).
    pub budget: usize,
}

/// The ask/tell solver interface shared by all implementations
/// (kurobako-style solver side of the solver/problem split).
///
/// The loop is always the same regardless of the concrete solver:
/// [`Solver::ask`] proposes a [`Suggestion`], the caller measures it,
/// and [`Solver::tell`] feeds the raw metric back. Any type
/// implementing the trait drops into the TUNA pipeline unchanged:
///
/// ```
/// use tuna_optimizer::random::RandomSearch;
/// use tuna_optimizer::{Objective, Solver};
/// use tuna_space::ConfigSpace;
/// use tuna_stats::rng::Rng;
///
/// let space = ConfigSpace::builder().float("x", 0.0, 1.0).build();
/// let mut solver: Box<dyn Solver> =
///     Box::new(RandomSearch::new(space.clone(), Objective::Minimize, 1));
/// let mut rng = Rng::seed_from(7);
/// for _ in 0..10 {
///     let s = solver.ask(&mut rng);
///     let x = space.value_of(&s.config, "x").as_float();
///     solver.tell(&s.config, (x - 0.5).abs(), s.budget);
/// }
/// assert_eq!(solver.n_observations(), 10);
/// let (_best, value) = solver.best().expect("ten observations");
/// assert!(value <= 0.5);
/// ```
pub trait Solver {
    /// Proposes the next configuration (and budget) to evaluate.
    fn ask(&mut self, rng: &mut Rng) -> Suggestion;

    /// Reports the (aggregated) raw metric value observed for `config` at
    /// `budget`.
    fn tell(&mut self, config: &Config, raw_value: f64, budget: usize);

    /// The best configuration observed so far and its raw metric value,
    /// preferring observations at the highest budget reached.
    fn best(&self) -> Option<(Config, f64)>;

    /// The search space.
    fn space(&self) -> &ConfigSpace;

    /// The optimization direction.
    fn objective(&self) -> Objective;

    /// Number of tell() calls so far.
    fn n_observations(&self) -> usize;
}

/// Pre-registry name for [`Solver`], kept so downstream ask/tell call
/// sites keep compiling while arms migrate to registry names.
pub use Solver as Optimizer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_cost_round_trip() {
        for raw in [-3.0, 0.0, 7.5] {
            assert_eq!(
                Objective::Minimize.from_cost(Objective::Minimize.to_cost(raw)),
                raw
            );
            assert_eq!(
                Objective::Maximize.from_cost(Objective::Maximize.to_cost(raw)),
                raw
            );
        }
    }

    #[test]
    fn objective_better() {
        assert!(Objective::Minimize.better(1.0, 2.0));
        assert!(!Objective::Minimize.better(2.0, 1.0));
        assert!(Objective::Maximize.better(2.0, 1.0));
        assert!(!Objective::Maximize.better(1.0, 2.0));
    }
}
