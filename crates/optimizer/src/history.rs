//! Observation history shared by the optimizers.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use tuna_space::{Config, ConfigId, ConfigSpace};

/// Total order on costs that quarantines non-finite values: any finite
/// cost ranks strictly better (earlier) than any NaN or ±inf, and
/// non-finite costs are ordered among themselves by [`f64::total_cmp`]
/// so ranking stays deterministic. A diverged run reporting NaN or an
/// overflowed penalty must never panic a study or win `best()`.
pub fn cost_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_finite(), b.is_finite()) {
        // Matches IEEE partial_cmp exactly on the finite-only path (incl.
        // -0.0 == 0.0), so histories without non-finite costs rank
        // byte-identically to the old panicking comparator.
        (true, true) => {
            if a < b {
                Ordering::Less
            } else if b < a {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// One reported evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The evaluated configuration.
    pub config: Config,
    /// Cost (already converted so smaller is better).
    pub cost: f64,
    /// Budget (number of nodes) the value was produced at.
    pub budget: usize,
}

/// Per-config rollup: the latest cost at the highest budget seen.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigRecord {
    /// The configuration.
    pub config: Config,
    /// Highest budget this config has been told at.
    pub max_budget: usize,
    /// Cost reported at that highest budget.
    pub cost: f64,
}

/// Append-only store of observations with per-config rollups.
///
/// Rollups live in an insertion-ordered `Vec` (with a `BTreeMap` used
/// only as an index), so surrogate training data and tie-breaking are
/// deterministic — iterating an unordered hash map directly would
/// randomize model fits between identical runs.
#[derive(Debug, Clone, Default)]
pub struct History {
    observations: Vec<Observation>,
    record_order: Vec<ConfigRecord>,
    index: BTreeMap<ConfigId, usize>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records an observation.
    pub fn push(&mut self, config: Config, cost: f64, budget: usize) {
        if !cost.is_finite() {
            // Observability side channel only: the quarantine itself is
            // enforced by the finite-filtering consumers below.
            tuna_obs::global()
                .counter(
                    "tuna_quarantined_nan_total",
                    "non-finite costs quarantined before any model fit",
                )
                .inc();
        }
        let id = config.id();
        self.observations.push(Observation {
            config: config.clone(),
            cost,
            budget,
        });
        match self.index.get(&id) {
            Some(&i) => {
                let entry = &mut self.record_order[i];
                if budget >= entry.max_budget {
                    entry.max_budget = budget;
                    entry.cost = cost;
                }
            }
            None => {
                self.index.insert(id, self.record_order.len());
                self.record_order.push(ConfigRecord {
                    config,
                    max_budget: budget,
                    cost,
                });
            }
        }
    }

    /// All raw observations in arrival order.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations exist.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Rollup for a config, if seen.
    pub fn record(&self, id: ConfigId) -> Option<&ConfigRecord> {
        self.index.get(&id).map(|&i| &self.record_order[i])
    }

    /// Iterates over per-config rollups in first-seen order.
    pub fn records(&self) -> impl Iterator<Item = &ConfigRecord> {
        self.record_order.iter()
    }

    /// Number of distinct configurations seen.
    pub fn n_configs(&self) -> usize {
        self.record_order.len()
    }

    /// The best (lowest-cost) rollup, preferring the highest budget tier
    /// that has any record: a config measured on 10 nodes at cost c beats a
    /// config measured on 1 node at cost c - eps, because only high-budget
    /// measurements are trustworthy under cloud noise.
    ///
    /// Non-finite rollups (NaN/±inf from diverged runs) are quarantined:
    /// they never win, the budget tier is chosen among finite records
    /// only, and `None` is returned if no finite record exists.
    pub fn best(&self) -> Option<&ConfigRecord> {
        let top_budget = self
            .record_order
            .iter()
            .filter(|r| r.cost.is_finite())
            .map(|r| r.max_budget)
            .max()?;
        self.record_order
            .iter()
            .filter(|r| r.max_budget == top_budget && r.cost.is_finite())
            .min_by(|a, b| cost_cmp(a.cost, b.cost))
    }

    /// Training matrix for a surrogate: one row per distinct config (its
    /// encoded form) and the cost at its highest budget. Non-finite
    /// rollups are quarantined — they must never reach a model fit.
    pub fn surrogate_data(&self, space: &ConfigSpace) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::with_capacity(self.record_order.len());
        let mut y = Vec::with_capacity(self.record_order.len());
        for rec in self.records().filter(|r| r.cost.is_finite()) {
            x.push(space.encode(&rec.config));
            y.push(rec.cost);
        }
        (x, y)
    }

    /// Like [`History::surrogate_data`] but one-hot encoded (for GPs).
    pub fn surrogate_data_one_hot(&self, space: &ConfigSpace) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::with_capacity(self.record_order.len());
        let mut y = Vec::with_capacity(self.record_order.len());
        for rec in self.records().filter(|r| r.cost.is_finite()) {
            x.push(space.encode_one_hot(&rec.config));
            y.push(rec.cost);
        }
        (x, y)
    }

    /// The `k` best distinct configs by rolled-up cost (any budget),
    /// best first. Non-finite rollups sort after every finite one.
    pub fn top_k(&self, k: usize) -> Vec<&ConfigRecord> {
        let mut recs: Vec<&ConfigRecord> = self.record_order.iter().collect();
        recs.sort_by(|a, b| cost_cmp(a.cost, b.cost));
        recs.truncate(k);
        recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_space::ParamValue;

    fn cfg(v: i64) -> Config {
        Config::new(vec![ParamValue::Int(v)])
    }

    #[test]
    fn rollup_keeps_highest_budget() {
        let mut h = History::new();
        h.push(cfg(1), 10.0, 1);
        h.push(cfg(1), 12.0, 3);
        h.push(cfg(1), 11.0, 2); // Lower budget: ignored by rollup.
        let rec = h.record(cfg(1).id()).unwrap();
        assert_eq!(rec.max_budget, 3);
        assert_eq!(rec.cost, 12.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.n_configs(), 1);
    }

    #[test]
    fn best_prefers_top_budget_tier() {
        let mut h = History::new();
        h.push(cfg(1), 1.0, 1); // Cheapest overall but low budget.
        h.push(cfg(2), 5.0, 10);
        h.push(cfg(3), 7.0, 10);
        let best = h.best().unwrap();
        assert_eq!(best.config, cfg(2));
    }

    #[test]
    fn best_none_when_empty() {
        assert!(History::new().best().is_none());
    }

    #[test]
    fn top_k_sorted() {
        let mut h = History::new();
        h.push(cfg(1), 3.0, 1);
        h.push(cfg(2), 1.0, 1);
        h.push(cfg(3), 2.0, 1);
        let top = h.top_k(2);
        assert_eq!(top[0].config, cfg(2));
        assert_eq!(top[1].config, cfg(3));
    }

    #[test]
    fn cost_cmp_quarantines_non_finite() {
        let mut v = [f64::NAN, 1.0, f64::INFINITY, -2.0, f64::NEG_INFINITY, 0.5];
        v.sort_by(|a, b| cost_cmp(*a, *b));
        assert_eq!(&v[..3], &[-2.0, 0.5, 1.0]);
        assert!(v[3..].iter().all(|c| !c.is_finite()));
        // Deterministic: a second sort of a permutation agrees.
        let mut w = [0.5, f64::NEG_INFINITY, -2.0, f64::INFINITY, 1.0, f64::NAN];
        w.sort_by(|a, b| cost_cmp(*a, *b));
        assert_eq!(v.iter().map(|c| c.to_bits()).collect::<Vec<_>>(), {
            w.iter().map(|c| c.to_bits()).collect::<Vec<_>>()
        });
    }

    #[test]
    fn best_never_returns_non_finite() {
        let mut h = History::new();
        h.push(cfg(1), f64::NAN, 10); // High budget but diverged.
        h.push(cfg(2), f64::NEG_INFINITY, 10); // -inf must not win.
        h.push(cfg(3), 4.0, 1);
        h.push(cfg(4), 3.0, 1);
        let best = h.best().unwrap();
        assert!(best.cost.is_finite());
        assert_eq!(best.config, cfg(4));
        // Counts stay exact: quarantine hides nothing from bookkeeping.
        assert_eq!(h.len(), 4);
        assert_eq!(h.n_configs(), 4);
    }

    #[test]
    fn best_none_when_all_non_finite() {
        let mut h = History::new();
        h.push(cfg(1), f64::NAN, 1);
        h.push(cfg(2), f64::INFINITY, 3);
        assert!(h.best().is_none());
        assert_eq!(h.len(), 2);
        assert_eq!(h.n_configs(), 2);
    }

    #[test]
    fn surrogate_data_excludes_non_finite() {
        let space = tuna_space::ConfigSpace::builder().int("v", 0, 10).build();
        let mut h = History::new();
        h.push(cfg(1), 3.0, 1);
        h.push(cfg(2), f64::NAN, 1);
        h.push(cfg(3), f64::INFINITY, 1);
        h.push(cfg(4), 1.0, 1);
        let (x, y) = h.surrogate_data(&space);
        assert_eq!(x.len(), 2);
        assert_eq!(y, vec![3.0, 1.0]);
        let (xh, yh) = h.surrogate_data_one_hot(&space);
        assert_eq!(xh.len(), 2);
        assert!(yh.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn top_k_sinks_non_finite() {
        let mut h = History::new();
        h.push(cfg(1), f64::NAN, 1);
        h.push(cfg(2), 2.0, 1);
        h.push(cfg(3), 1.0, 1);
        let top = h.top_k(3);
        assert_eq!(top[0].config, cfg(3));
        assert_eq!(top[1].config, cfg(2));
        assert!(top[2].cost.is_nan());
    }

    #[test]
    fn surrogate_data_shapes() {
        let space = tuna_space::ConfigSpace::builder().int("v", 0, 10).build();
        let mut h = History::new();
        h.push(cfg(1), 3.0, 1);
        h.push(cfg(2), 1.0, 1);
        h.push(cfg(1), 2.5, 3);
        let (x, y) = h.surrogate_data(&space);
        assert_eq!(x.len(), 2);
        assert_eq!(y.len(), 2);
        assert_eq!(x[0].len(), 1);
    }
}
