//! Pure random search.
//!
//! Both the initialization design used by the model-based optimizers and a
//! baseline in its own right.

use crate::history::History;
use crate::{Objective, Solver, Suggestion};
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;

/// Uniform random search at a fixed budget.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    space: ConfigSpace,
    objective: Objective,
    budget: usize,
    history: History,
}

impl RandomSearch {
    /// Creates a random-search optimizer suggesting at `budget` (use 1 for
    /// traditional single-node sampling).
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(space: ConfigSpace, objective: Objective, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        RandomSearch {
            space,
            objective,
            budget,
            history: History::new(),
        }
    }
}

impl Solver for RandomSearch {
    fn ask(&mut self, rng: &mut Rng) -> Suggestion {
        Suggestion {
            config: self.space.sample(rng),
            budget: self.budget,
        }
    }

    fn tell(&mut self, config: &Config, raw_value: f64, budget: usize) {
        self.history
            .push(config.clone(), self.objective.to_cost(raw_value), budget);
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.history
            .best()
            .map(|r| (r.config.clone(), self.objective.from_cost(r.cost)))
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn objective(&self) -> Objective {
        self.objective
    }

    fn n_observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    #[test]
    fn finds_decent_point_eventually() {
        let space = space();
        let mut opt = RandomSearch::new(space.clone(), Objective::Minimize, 1);
        let mut rng = Rng::seed_from(5);
        for _ in 0..200 {
            let s = opt.ask(&mut rng);
            let x = space.value_of(&s.config, "x").as_float();
            opt.tell(&s.config, (x - 0.42).abs(), s.budget);
        }
        let (_, best) = opt.best().unwrap();
        assert!(best < 0.05, "best {best}");
    }

    #[test]
    fn maximization_flips_ranking() {
        let space = space();
        let mut opt = RandomSearch::new(space.clone(), Objective::Maximize, 1);
        let a = space.sample(&mut Rng::seed_from(1));
        let b = space.sample(&mut Rng::seed_from(2));
        opt.tell(&a, 10.0, 1);
        opt.tell(&b, 20.0, 1);
        let (best_cfg, best_val) = opt.best().unwrap();
        assert_eq!(best_cfg, b);
        assert_eq!(best_val, 20.0);
    }

    #[test]
    fn suggests_at_configured_budget() {
        let mut opt = RandomSearch::new(space(), Objective::Minimize, 7);
        let s = opt.ask(&mut Rng::seed_from(1));
        assert_eq!(s.budget, 7);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_panics() {
        RandomSearch::new(space(), Objective::Minimize, 0);
    }
}
