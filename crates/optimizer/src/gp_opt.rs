//! Gaussian-process Bayesian optimization (OtterTune-style, §6.6).
//!
//! Identical loop structure to SMAC but with a GP surrogate over one-hot
//! encoded configurations. Because exact GP inference is cubic in the
//! number of observations, training is capped to the most recent
//! `max_train_points` distinct configs — tuning runs stay in the hundreds,
//! so this rarely binds.

use crate::history::History;
use crate::multifidelity::{LadderParams, MultiFidelityOptimizer, Proposer};
use crate::Objective;
use tuna_ml::acquisition::expected_improvement;
use tuna_ml::gp::{GaussianProcess, Kernel};
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;

/// GP optimizer hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GpParams {
    /// Random initialization design size.
    pub n_init: usize,
    /// Random candidates per EI maximization.
    pub n_random_candidates: usize,
    /// Incumbents whose neighborhoods are searched.
    pub top_k_incumbents: usize,
    /// Neighbors generated per incumbent.
    pub n_neighbors: usize,
    /// EI exploration bonus.
    pub xi: f64,
    /// Maximum training points for the GP (most recent kept).
    pub max_train_points: usize,
}

impl Default for GpParams {
    fn default() -> Self {
        GpParams {
            n_init: 10,
            n_random_candidates: 128,
            top_k_incumbents: 4,
            n_neighbors: 6,
            xi: 0.01,
            max_train_points: 200,
        }
    }
}

/// GP-based proposer.
#[derive(Debug, Clone)]
pub struct GpProposer {
    params: GpParams,
}

impl GpProposer {
    /// Creates a proposer.
    pub fn new(params: GpParams) -> Self {
        GpProposer { params }
    }

    /// The hyperparameters.
    pub fn params(&self) -> &GpParams {
        &self.params
    }
}

impl Proposer for GpProposer {
    fn propose(&mut self, history: &History, space: &ConfigSpace, rng: &mut Rng) -> Config {
        if history.n_configs() < self.params.n_init {
            return space.sample(rng);
        }

        let (mut x, mut y) = history.surrogate_data_one_hot(space);
        if x.len() > self.params.max_train_points {
            let skip = x.len() - self.params.max_train_points;
            x.drain(..skip);
            y.drain(..skip);
        }
        let mut gp = match GaussianProcess::new(
            Kernel::Matern52 {
                lengthscale: 0.5,
                signal_var: 1.0,
            },
            1e-3,
        ) {
            Ok(gp) => gp,
            Err(_) => return space.sample(rng),
        };
        if gp.fit_with_hyperopt(&x, &y).is_err() {
            return space.sample(rng);
        }
        let best_cost = y.iter().copied().fold(f64::INFINITY, f64::min);

        let mut candidates: Vec<Config> = (0..self.params.n_random_candidates)
            .map(|_| space.sample(rng))
            .collect();
        for rec in history.top_k(self.params.top_k_incumbents) {
            candidates.extend(space.neighbors(&rec.config, self.params.n_neighbors, rng));
        }

        let mut best: Option<(f64, Config)> = None;
        for cand in candidates {
            let enc = space.encode_one_hot(&cand);
            let (mean, var) = gp.predict_stats(&enc);
            let ei = expected_improvement(mean, var.sqrt(), best_cost, self.params.xi);
            // A non-finite acquisition value must never win the argmax.
            if ei.is_finite() && best.as_ref().is_none_or(|(b, _)| ei > *b) {
                best = Some((ei, cand));
            }
        }
        best.map(|(_, c)| c).unwrap_or_else(|| space.sample(rng))
    }
}

/// GP optimizer: [`GpProposer`] wrapped in the Successive-Halving ladder.
pub type GpOptimizer = MultiFidelityOptimizer<GpProposer>;

impl GpOptimizer {
    /// Single-fidelity GP optimization (traditional sampling with a GP).
    pub fn new(space: ConfigSpace, objective: Objective, params: GpParams) -> GpOptimizer {
        MultiFidelityOptimizer::with_proposer(
            space,
            objective,
            LadderParams::single(),
            GpProposer::new(params),
        )
    }

    /// Multi-fidelity GP optimization (TUNA with a GP optimizer).
    pub fn multi_fidelity(
        space: ConfigSpace,
        objective: Objective,
        params: GpParams,
        ladder: LadderParams,
    ) -> GpOptimizer {
        MultiFidelityOptimizer::with_proposer(space, objective, ladder, GpProposer::new(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Optimizer, Suggestion};

    fn space1d() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    #[test]
    fn gp_converges_on_smooth_objective() {
        let space = space1d();
        let mut opt = GpOptimizer::new(
            space.clone(),
            Objective::Minimize,
            GpParams {
                n_init: 6,
                n_random_candidates: 64,
                ..GpParams::default()
            },
        );
        let mut rng = Rng::seed_from(17);
        for _ in 0..35 {
            let Suggestion { config, budget } = opt.ask(&mut rng);
            let x = space.value_of(&config, "x").as_float();
            let cost = (x - 0.62) * (x - 0.62);
            opt.tell(&config, cost, budget);
        }
        let (_, best) = opt.best().unwrap();
        assert!(best < 0.01, "best {best}");
    }

    #[test]
    fn gp_handles_categoricals_via_one_hot() {
        let space = ConfigSpace::builder()
            .categorical("c", &["bad", "good", "worse"])
            .float("x", 0.0, 1.0)
            .build();
        let mut opt = GpOptimizer::new(space.clone(), Objective::Minimize, GpParams::default());
        let mut rng = Rng::seed_from(19);
        for _ in 0..40 {
            let Suggestion { config, budget } = opt.ask(&mut rng);
            let c = space.value_of(&config, "c").as_cat();
            let x = space.value_of(&config, "x").as_float();
            let cost = match c {
                1 => x, // "good": cost is just x.
                0 => 1.0 + x,
                _ => 2.0 + x,
            };
            opt.tell(&config, cost, budget);
        }
        let (best, _) = opt.best().unwrap();
        assert_eq!(space.value_of(&best, "c").as_cat(), 1);
    }

    #[test]
    fn gp_multi_fidelity_promotes() {
        let space = space1d();
        let mut opt = GpOptimizer::multi_fidelity(
            space.clone(),
            Objective::Minimize,
            GpParams {
                n_init: 5,
                n_random_candidates: 32,
                ..GpParams::default()
            },
            LadderParams::paper_default(),
        );
        let mut rng = Rng::seed_from(23);
        let mut max_budget = 0;
        for _ in 0..60 {
            let s = opt.ask(&mut rng);
            max_budget = max_budget.max(s.budget);
            let x = space.value_of(&s.config, "x").as_float();
            opt.tell(&s.config, x, s.budget);
        }
        assert!(max_budget >= 3, "never promoted");
    }
}
