//! SMAC-style Bayesian optimization.
//!
//! Follows the structure of SMAC3 (the paper's default optimizer, §5): a
//! random-forest surrogate over the encoded configuration space, expected
//! improvement maximized over a candidate pool of random samples plus local
//! neighborhoods of the incumbents, with random interleaving for
//! exploration guarantees.

use crate::history::History;
use crate::multifidelity::{LadderParams, MultiFidelityOptimizer, Proposer};
use crate::Objective;
use tuna_ml::acquisition::expected_improvement;
use tuna_ml::forest::{ForestParams, RandomForest};
use tuna_ml::Regressor;
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::Rng;

/// SMAC hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SmacParams {
    /// Random initialization design size before the surrogate activates.
    pub n_init: usize,
    /// Random candidates per EI maximization.
    pub n_random_candidates: usize,
    /// Incumbents whose neighborhoods are searched.
    pub top_k_incumbents: usize,
    /// Neighbors generated per incumbent.
    pub n_neighbors: usize,
    /// Probability of proposing a uniformly random config instead of the
    /// EI argmax (SMAC's interleaved random search).
    pub random_interleave_prob: f64,
    /// EI exploration bonus.
    pub xi: f64,
    /// Surrogate forest parameters.
    pub forest: ForestParams,
}

impl Default for SmacParams {
    fn default() -> Self {
        SmacParams {
            n_init: 10,
            n_random_candidates: 200,
            top_k_incumbents: 5,
            n_neighbors: 8,
            random_interleave_prob: 0.2,
            xi: 0.01,
            forest: ForestParams::default(),
        }
    }
}

/// The SMAC proposer: RF surrogate + EI over random/local candidates.
#[derive(Debug, Clone)]
pub struct SmacProposer {
    params: SmacParams,
}

impl SmacProposer {
    /// Creates a proposer.
    pub fn new(params: SmacParams) -> Self {
        SmacProposer { params }
    }

    /// The hyperparameters.
    pub fn params(&self) -> &SmacParams {
        &self.params
    }
}

impl Proposer for SmacProposer {
    fn propose(&mut self, history: &History, space: &ConfigSpace, rng: &mut Rng) -> Config {
        // Initialization design and interleaved random exploration.
        if history.n_configs() < self.params.n_init
            || rng.chance(self.params.random_interleave_prob)
        {
            return space.sample(rng);
        }

        let (x, y) = history.surrogate_data(space);
        let mut forest = RandomForest::new(self.params.forest);
        if forest
            .fit(&x, &y, &mut rng.fork(history.len() as u64))
            .is_err()
        {
            return space.sample(rng);
        }
        let best_cost = y.iter().copied().fold(f64::INFINITY, f64::min);

        // Candidate pool: random samples + neighbors of the incumbents.
        let mut candidates: Vec<Config> = (0..self.params.n_random_candidates)
            .map(|_| space.sample(rng))
            .collect();
        for rec in history.top_k(self.params.top_k_incumbents) {
            candidates.extend(space.neighbors(&rec.config, self.params.n_neighbors, rng));
        }

        let mut best: Option<(f64, Config)> = None;
        for cand in candidates {
            let enc = space.encode(&cand);
            let (mean, var) = forest.predict_stats(&enc);
            let ei = expected_improvement(mean, var.sqrt(), best_cost, self.params.xi);
            // A non-finite acquisition value must never win the argmax.
            if ei.is_finite() && best.as_ref().is_none_or(|(b, _)| ei > *b) {
                best = Some((ei, cand));
            }
        }
        best.map(|(_, c)| c).unwrap_or_else(|| space.sample(rng))
    }
}

/// SMAC optimizer: [`SmacProposer`] wrapped in the Successive-Halving
/// ladder.
pub type SmacOptimizer = MultiFidelityOptimizer<SmacProposer>;

impl SmacOptimizer {
    /// Single-fidelity SMAC (budget 1): the paper's *traditional sampling*
    /// optimizer setup.
    pub fn new(space: ConfigSpace, objective: Objective, params: SmacParams) -> SmacOptimizer {
        MultiFidelityOptimizer::with_proposer(
            space,
            objective,
            LadderParams::single(),
            SmacProposer::new(params),
        )
    }

    /// Multi-fidelity SMAC with a custom ladder — the optimizer TUNA runs.
    pub fn multi_fidelity(
        space: ConfigSpace,
        objective: Objective,
        params: SmacParams,
        ladder: LadderParams,
    ) -> SmacOptimizer {
        MultiFidelityOptimizer::with_proposer(space, objective, ladder, SmacProposer::new(params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::RandomSearch;
    use crate::{Optimizer, Suggestion};

    /// 2-D test objective with optimum at (0.25, 0.75); cost in [0, ~1.25].
    fn cost_fn(space: &ConfigSpace, config: &Config) -> f64 {
        let x = space.value_of(config, "x").as_float();
        let y = space.value_of(config, "y").as_float();
        (x - 0.25) * (x - 0.25) + (y - 0.75) * (y - 0.75)
    }

    fn space2d() -> ConfigSpace {
        ConfigSpace::builder()
            .float("x", 0.0, 1.0)
            .float("y", 0.0, 1.0)
            .build()
    }

    fn run_opt(opt: &mut dyn Optimizer, iters: usize, seed: u64) -> f64 {
        let space = opt.space().clone();
        let mut rng = Rng::seed_from(seed);
        for _ in 0..iters {
            let Suggestion { config, budget } = opt.ask(&mut rng);
            let cost = cost_fn(&space, &config);
            opt.tell(&config, cost, budget);
        }
        opt.best().map(|(_, v)| v).unwrap()
    }

    #[test]
    fn smac_beats_random_search_on_average() {
        // In four dimensions 60 random samples stay far from the optimum,
        // while the surrogate-guided search homes in.
        let space4d = || {
            ConfigSpace::builder()
                .float("a", 0.0, 1.0)
                .float("b", 0.0, 1.0)
                .float("c", 0.0, 1.0)
                .float("d", 0.0, 1.0)
                .build()
        };
        let cost4 = |space: &ConfigSpace, config: &Config| {
            ["a", "b", "c", "d"]
                .iter()
                .map(|n| {
                    let v = space.value_of(config, n).as_float();
                    (v - 0.3) * (v - 0.3)
                })
                .sum::<f64>()
        };
        let run4 = |opt: &mut dyn Optimizer, seed: u64| {
            let space = opt.space().clone();
            let mut rng = Rng::seed_from(seed);
            for _ in 0..60 {
                let Suggestion { config, budget } = opt.ask(&mut rng);
                let cost = cost4(&space, &config);
                opt.tell(&config, cost, budget);
            }
            opt.best().map(|(_, v)| v).unwrap()
        };
        let mut smac_total = 0.0;
        let mut random_total = 0.0;
        for seed in [1u64, 2, 3, 4, 5] {
            let mut smac = SmacOptimizer::new(
                space4d(),
                Objective::Minimize,
                SmacParams {
                    n_init: 8,
                    ..SmacParams::default()
                },
            );
            smac_total += run4(&mut smac, seed);
            let mut rs = RandomSearch::new(space4d(), Objective::Minimize, 1);
            random_total += run4(&mut rs, seed);
        }
        assert!(
            smac_total < random_total,
            "smac {smac_total} vs random {random_total}"
        );
    }

    #[test]
    fn smac_converges_close_to_optimum() {
        let mut smac = SmacOptimizer::new(space2d(), Objective::Minimize, SmacParams::default());
        let best = run_opt(&mut smac, 80, 42);
        assert!(best < 0.02, "best cost {best}");
    }

    #[test]
    fn smac_maximization_works() {
        let space = space2d();
        let mut smac =
            SmacOptimizer::new(space.clone(), Objective::Maximize, SmacParams::default());
        let mut rng = Rng::seed_from(7);
        for _ in 0..60 {
            let s = smac.ask(&mut rng);
            // Maximize the negative cost: peak value 0 at the optimum.
            let value = -cost_fn(&space, &s.config);
            smac.tell(&s.config, value, s.budget);
        }
        let (_, best) = smac.best().unwrap();
        assert!(best > -0.05, "best {best}");
    }

    #[test]
    fn multi_fidelity_smac_reaches_max_budget() {
        let space = space2d();
        let mut smac = SmacOptimizer::multi_fidelity(
            space.clone(),
            Objective::Minimize,
            SmacParams::default(),
            LadderParams::paper_default(),
        );
        let mut rng = Rng::seed_from(9);
        let mut max_budget_seen = 0;
        for _ in 0..120 {
            let s = smac.ask(&mut rng);
            max_budget_seen = max_budget_seen.max(s.budget);
            let cost = cost_fn(&space, &s.config);
            smac.tell(&s.config, cost, s.budget);
        }
        assert_eq!(max_budget_seen, 10);
    }

    #[test]
    fn proposals_always_validate() {
        let space = space2d();
        let mut smac =
            SmacOptimizer::new(space.clone(), Objective::Minimize, SmacParams::default());
        let mut rng = Rng::seed_from(3);
        for _ in 0..40 {
            let s = smac.ask(&mut rng);
            assert!(space.validate(&s.config).is_ok());
            smac.tell(&s.config, cost_fn(&space, &s.config), s.budget);
        }
    }

    #[test]
    fn handles_mixed_type_spaces() {
        let space = ConfigSpace::builder()
            .int("i", 0, 100)
            .int_log("il", 1, 4096)
            .categorical("c", &["a", "b", "c"])
            .boolean("flag")
            .float("f", -1.0, 1.0)
            .build();
        let mut smac =
            SmacOptimizer::new(space.clone(), Objective::Minimize, SmacParams::default());
        let mut rng = Rng::seed_from(5);
        for _ in 0..30 {
            let s = smac.ask(&mut rng);
            // Cost prefers i near 50 and flag = true.
            let i = space.value_of(&s.config, "i").as_int() as f64;
            let flag = space.value_of(&s.config, "flag").as_bool();
            let cost = (i - 50.0).abs() / 50.0 + if flag { 0.0 } else { 1.0 };
            smac.tell(&s.config, cost, s.budget);
        }
        let (best, _) = smac.best().unwrap();
        assert!(space.validate(&best).is_ok());
    }
}
