//! String-keyed solver registry (kurobako-style solver/problem split).
//!
//! Arms in `tuna-core` name solvers declaratively (`"smac"`, `"gp"`,
//! `"random"`, `"tournament"`) instead of constructing concrete types.
//! Each registered solver carries a [`Capabilities`] descriptor so a
//! runner can adapt — most importantly [`Capabilities::match_size`],
//! which tells the arena runner how many configs the solver wants
//! evaluated on the *same machine and noise draw* (2 for head-to-head
//! tournament matches).
//!
//! Registry names double as the determinism anchor: per-arm seed salts
//! are derived from [`SolverId::name_hash`] (FNV-1a of the name) rather
//! than hand-numbered enum indices, so adding a solver can never
//! silently reuse another arm's salt.

use std::fmt;
use std::sync::OnceLock;

use crate::gp_opt::{GpOptimizer, GpParams};
use crate::multifidelity::LadderParams;
use crate::random::RandomSearch;
use crate::smac::{SmacOptimizer, SmacParams};
use crate::tournament::{TournamentParams, TournamentSolver};
use crate::{Objective, Solver};
use tuna_space::ConfigSpace;
use tuna_stats::fnv::Checksum;

/// What a registered solver can do; runners adapt to this descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Understands the Successive-Halving budget ladder (may suggest
    /// budgets above 1 when given a multi-rung ladder).
    pub multi_fidelity: bool,
    /// Fits a surrogate model over the observation history.
    pub model_based: bool,
    /// Configs the solver wants evaluated per noise draw: 1 for
    /// independent evaluations, 2 for head-to-head matches whose sides
    /// must share one machine/noise draw.
    pub match_size: usize,
}

/// Construction parameters a registry builder may draw from. Solvers
/// take only the pieces they understand; the rest are ignored.
#[derive(Debug, Clone)]
pub struct SolverParams {
    /// Budget ladder for multi-fidelity solvers.
    pub ladder: LadderParams,
    /// SMAC hyperparameters.
    pub smac: SmacParams,
    /// GP hyperparameters.
    pub gp: GpParams,
    /// Tournament hyperparameters.
    pub tournament: TournamentParams,
    /// Fixed suggestion budget for single-fidelity solvers.
    pub budget: usize,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            ladder: LadderParams::single(),
            smac: SmacParams::default(),
            gp: GpParams::default(),
            tournament: TournamentParams::default(),
            budget: 1,
        }
    }
}

type BuildFn = fn(ConfigSpace, Objective, &SolverParams) -> Box<dyn Solver>;

/// One registered solver: name, capabilities, constructor.
pub struct SolverEntry {
    name: &'static str,
    capabilities: Capabilities,
    build: BuildFn,
}

impl SolverEntry {
    /// The registry key.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The capability descriptor.
    pub fn capabilities(&self) -> Capabilities {
        self.capabilities
    }

    /// Constructs the solver.
    pub fn build(
        &self,
        space: ConfigSpace,
        objective: Objective,
        params: &SolverParams,
    ) -> Box<dyn Solver> {
        (self.build)(space, objective, params)
    }
}

/// The string-keyed solver registry.
pub struct SolverRegistry {
    entries: Vec<SolverEntry>,
}

impl SolverRegistry {
    /// The built-in registry: `random`, `smac`, `gp`, `tournament`.
    pub fn builtin() -> &'static SolverRegistry {
        static REGISTRY: OnceLock<SolverRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| SolverRegistry {
            entries: vec![
                SolverEntry {
                    name: "random",
                    capabilities: Capabilities {
                        multi_fidelity: false,
                        model_based: false,
                        match_size: 1,
                    },
                    build: |space, objective, p| {
                        Box::new(RandomSearch::new(space, objective, p.budget.max(1)))
                    },
                },
                SolverEntry {
                    name: "smac",
                    capabilities: Capabilities {
                        multi_fidelity: true,
                        model_based: true,
                        match_size: 1,
                    },
                    build: |space, objective, p| {
                        Box::new(SmacOptimizer::multi_fidelity(
                            space,
                            objective,
                            p.smac.clone(),
                            p.ladder.clone(),
                        ))
                    },
                },
                SolverEntry {
                    name: "gp",
                    capabilities: Capabilities {
                        multi_fidelity: true,
                        model_based: true,
                        match_size: 1,
                    },
                    build: |space, objective, p| {
                        Box::new(GpOptimizer::multi_fidelity(
                            space,
                            objective,
                            p.gp.clone(),
                            p.ladder.clone(),
                        ))
                    },
                },
                SolverEntry {
                    name: "tournament",
                    capabilities: Capabilities {
                        multi_fidelity: false,
                        model_based: false,
                        match_size: 2,
                    },
                    build: |space, objective, p| {
                        Box::new(TournamentSolver::new(
                            space,
                            objective,
                            p.tournament.clone(),
                        ))
                    },
                },
            ],
        })
    }

    /// Registered names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&SolverEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Builds a solver by name, or an error listing the known names.
    pub fn build(
        &self,
        name: &str,
        space: ConfigSpace,
        objective: Objective,
        params: &SolverParams,
    ) -> Result<Box<dyn Solver>, String> {
        match self.get(name) {
            Some(entry) => Ok(entry.build(space, objective, params)),
            None => Err(format!(
                "unknown solver {name:?}; registered: {}",
                self.names().join(", ")
            )),
        }
    }
}

/// A validated solver registry name — the declarative handle arms use.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SolverId(String);

impl SolverId {
    /// Validates `name` against the built-in registry.
    pub fn new(name: &str) -> Result<SolverId, String> {
        match SolverRegistry::builtin().get(name) {
            Some(entry) => Ok(SolverId(entry.name().to_string())),
            None => Err(format!(
                "unknown solver {name:?}; registered: {}",
                SolverRegistry::builtin().names().join(", ")
            )),
        }
    }

    /// The paper's default optimizer.
    pub fn smac() -> SolverId {
        SolverId("smac".to_string())
    }

    /// The GP alternative (§6.6).
    pub fn gp() -> SolverId {
        SolverId("gp".to_string())
    }

    /// Pure random search.
    pub fn random() -> SolverId {
        SolverId("random".to_string())
    }

    /// DarwinGame head-to-head tournament selection.
    pub fn tournament() -> SolverId {
        SolverId("tournament".to_string())
    }

    /// The registry key.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// FNV-1a/64 of the registry name — the per-arm seed-salt anchor.
    /// Name-derived salts cannot collide with hand-numbered indices when
    /// a new solver is registered.
    pub fn name_hash(&self) -> u64 {
        let mut c = Checksum::new();
        c.push_str(&self.0);
        c.value()
    }

    /// The capability descriptor.
    pub fn capabilities(&self) -> Capabilities {
        SolverRegistry::builtin()
            .get(&self.0)
            .expect("SolverId is validated at construction")
            .capabilities()
    }

    /// Builds the solver.
    pub fn build(
        &self,
        space: ConfigSpace,
        objective: Objective,
        params: &SolverParams,
    ) -> Box<dyn Solver> {
        SolverRegistry::builtin()
            .get(&self.0)
            .expect("SolverId is validated at construction")
            .build(space, objective, params)
    }
}

impl fmt::Display for SolverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuna_stats::rng::Rng;

    fn space() -> ConfigSpace {
        ConfigSpace::builder().float("x", 0.0, 1.0).build()
    }

    #[test]
    fn builtin_registry_names_and_order() {
        assert_eq!(
            SolverRegistry::builtin().names(),
            vec!["random", "smac", "gp", "tournament"]
        );
    }

    #[test]
    fn unknown_name_lists_registered() {
        let err = SolverId::new("adam").unwrap_err();
        assert!(err.contains("unknown solver"), "{err}");
        assert!(err.contains("tournament"), "{err}");
        let err2 = SolverRegistry::builtin()
            .build(
                "adam",
                space(),
                Objective::Minimize,
                &SolverParams::default(),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(err2.contains("random, smac, gp, tournament"), "{err2}");
    }

    #[test]
    fn every_registered_solver_builds_and_runs() {
        for name in SolverRegistry::builtin().names() {
            let mut solver = SolverRegistry::builtin()
                .build(name, space(), Objective::Minimize, &SolverParams::default())
                .unwrap();
            let mut rng = Rng::seed_from(1);
            for _ in 0..20 {
                let s = solver.ask(&mut rng);
                let x = s.config.get(0).as_float();
                solver.tell(&s.config, x, s.budget);
            }
            assert!(solver.best().is_some(), "{name} found no best");
            assert_eq!(solver.n_observations(), 20, "{name} miscounted");
        }
    }

    #[test]
    fn capabilities_match_solver_nature() {
        let caps = |n: &str| SolverRegistry::builtin().get(n).unwrap().capabilities();
        assert!(caps("smac").model_based && caps("smac").multi_fidelity);
        assert!(caps("gp").model_based && caps("gp").multi_fidelity);
        assert!(!caps("random").model_based);
        assert_eq!(caps("tournament").match_size, 2);
        assert_eq!(caps("smac").match_size, 1);
    }

    #[test]
    fn name_hashes_are_distinct_and_stable() {
        let ids = [
            SolverId::random(),
            SolverId::smac(),
            SolverId::gp(),
            SolverId::tournament(),
        ];
        let mut hashes: Vec<u64> = ids.iter().map(|i| i.name_hash()).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), ids.len(), "salt collision");
        // Pinned: the salt derivation is part of the campaign seed
        // contract — changing it re-seeds every named-solver arm.
        let mut c = Checksum::new();
        c.push_str("smac");
        assert_eq!(SolverId::smac().name_hash(), c.value());
    }

    #[test]
    fn validated_ids_round_trip() {
        for name in SolverRegistry::builtin().names() {
            let id = SolverId::new(name).unwrap();
            assert_eq!(id.as_str(), name);
            assert_eq!(id.to_string(), name);
        }
    }
}
