//! DarwinGame-style tournament selection.
//!
//! Instead of fitting a surrogate over noisy absolute measurements, the
//! tournament solver pits configurations against each other in
//! head-to-head matches: a generation of `bracket_size` configs plays a
//! single-elimination bracket, winners advance, and the champion seeds
//! the next generation (champion + local mutants + fresh random
//! entrants). Because both sides of a match are meant to run on the
//! *same machine and noise draw* (the arena runner in `tuna-core`
//! honors [`Capabilities::match_size`]), machine noise cancels out of
//! the comparison — a direct alternative to TUNA's outlier filtering.
//!
//! Determinism: the bracket structure is a pure function of
//! `(seed, generation, round)`. The solver captures its seed from the
//! first `ask()`'s RNG stream, then derives every generation's
//! population and every round's pairing from forked counters, so two
//! same-seed runs produce bit-identical ask/tell streams.
//!
//! [`Capabilities::match_size`]: crate::solver::Capabilities

use std::collections::VecDeque;

use crate::history::{cost_cmp, History};
use crate::{Objective, Solver, Suggestion};
use tuna_space::{Config, ConfigSpace};
use tuna_stats::rng::{hash_combine, Rng};

/// Domain salts separating the population stream from the pairing stream.
const GEN_SALT: u64 = 0x7A_0001;
const ROUND_SALT: u64 = 0x7A_0002;

/// Tournament hyperparameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TournamentParams {
    /// Configs per generation; must be a power of two >= 2 so the
    /// single-elimination bracket pairs cleanly.
    pub bracket_size: usize,
    /// Local mutants of the reigning champion seeded into each new
    /// generation (the rest of the bracket is fresh random entrants).
    pub n_mutants: usize,
    /// Evaluation budget (number of nodes) per match play.
    pub budget: usize,
}

impl Default for TournamentParams {
    fn default() -> Self {
        TournamentParams {
            bracket_size: 8,
            n_mutants: 3,
            budget: 1,
        }
    }
}

impl TournamentParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bracket_size` is not a power of two >= 2 or `budget`
    /// is zero.
    pub fn validate(&self) {
        assert!(
            self.bracket_size >= 2 && self.bracket_size.is_power_of_two(),
            "bracket_size must be a power of two >= 2"
        );
        assert!(self.budget > 0, "budget must be positive");
    }
}

/// Head-to-head tournament solver (see module docs).
#[derive(Debug, Clone)]
pub struct TournamentSolver {
    space: ConfigSpace,
    objective: Objective,
    params: TournamentParams,
    history: History,
    /// Captured from the first ask's RNG so brackets are reproducible.
    seed: Option<u64>,
    generation: u64,
    round: u64,
    champion: Option<Config>,
    /// Players remaining in the current bracket (in seeding order).
    players: Vec<Config>,
    /// Configs of the current round not yet handed out by `ask`.
    pending: VecDeque<Config>,
    /// Match slots of the current round, filled by `tell` (slot 2i plays
    /// slot 2i+1).
    awaiting: Vec<(Config, Option<f64>)>,
}

impl TournamentSolver {
    /// Creates a tournament solver.
    ///
    /// # Panics
    ///
    /// Panics if `params` are invalid (see [`TournamentParams::validate`]).
    pub fn new(space: ConfigSpace, objective: Objective, params: TournamentParams) -> Self {
        params.validate();
        TournamentSolver {
            space,
            objective,
            params,
            history: History::new(),
            seed: None,
            generation: 0,
            round: 0,
            champion: None,
            players: Vec::new(),
            pending: VecDeque::new(),
            awaiting: Vec::new(),
        }
    }

    /// The hyperparameters.
    pub fn params(&self) -> &TournamentParams {
        &self.params
    }

    /// The reigning champion (winner of the last completed bracket).
    pub fn champion(&self) -> Option<&Config> {
        self.champion.as_ref()
    }

    /// Completed generations (brackets played to a champion).
    pub fn generations_played(&self) -> u64 {
        self.generation
    }

    /// Spawns a fresh generation: champion + mutants + random entrants.
    fn spawn_generation(&mut self, seed: u64) {
        let mut gen_rng =
            Rng::seed_from(hash_combine(hash_combine(seed, GEN_SALT), self.generation));
        let mut pop = Vec::with_capacity(self.params.bracket_size);
        if let Some(champ) = &self.champion {
            pop.push(champ.clone());
            let n = self.params.n_mutants.min(self.params.bracket_size - 1);
            pop.extend(self.space.neighbors(champ, n, &mut gen_rng));
        }
        while pop.len() < self.params.bracket_size {
            pop.push(self.space.sample(&mut gen_rng));
        }
        pop.truncate(self.params.bracket_size);
        self.players = pop;
        self.round = 0;
    }

    /// Lays out the current round: pairing is a pure function of
    /// (seed, generation, round).
    fn start_round(&mut self, seed: u64) {
        let mut order: Vec<usize> = (0..self.players.len()).collect();
        let mut pair_rng = Rng::seed_from(hash_combine(
            hash_combine(hash_combine(seed, ROUND_SALT), self.generation),
            self.round,
        ));
        pair_rng.shuffle(&mut order);
        self.awaiting = order
            .iter()
            .map(|&i| (self.players[i].clone(), None))
            .collect();
        self.pending = self.awaiting.iter().map(|(c, _)| c.clone()).collect();
    }

    /// Resolves the completed round: lower cost wins each match, with
    /// non-finite costs losing deterministically (both non-finite: the
    /// earlier slot advances).
    fn resolve_round(&mut self) {
        let mut winners = Vec::with_capacity(self.awaiting.len() / 2);
        for pair in self.awaiting.chunks(2) {
            let (a, a_cost) = (&pair[0].0, pair[0].1.unwrap_or(f64::NAN));
            let winner = if pair.len() == 2 {
                let (b, b_cost) = (&pair[1].0, pair[1].1.unwrap_or(f64::NAN));
                if cost_cmp(a_cost, b_cost) == std::cmp::Ordering::Greater {
                    b
                } else {
                    a
                }
            } else {
                a
            };
            winners.push(winner.clone());
        }
        self.awaiting.clear();
        self.players = winners;
        self.round += 1;
        if self.players.len() == 1 {
            self.champion = self.players.pop();
            self.generation += 1;
            self.round = 0;
        }
    }
}

impl Solver for TournamentSolver {
    fn ask(&mut self, rng: &mut Rng) -> Suggestion {
        let seed = *self.seed.get_or_insert_with(|| rng.next_u64());
        if let Some(config) = self.pending.pop_front() {
            return Suggestion {
                config,
                budget: self.params.budget,
            };
        }
        if self.awaiting.iter().any(|(_, r)| r.is_none()) {
            // A generic driver asked again before telling the round's
            // results; hand out an off-bracket probe instead of stalling.
            return Suggestion {
                config: self.space.sample(rng),
                budget: self.params.budget,
            };
        }
        if self.players.len() < 2 {
            self.spawn_generation(seed);
        }
        self.start_round(seed);
        let config = self.pending.pop_front().expect("non-empty round");
        Suggestion {
            config,
            budget: self.params.budget,
        }
    }

    fn tell(&mut self, config: &Config, raw_value: f64, budget: usize) {
        let cost = self.objective.to_cost(raw_value);
        self.history.push(config.clone(), cost, budget);
        let id = config.id();
        if let Some(slot) = self
            .awaiting
            .iter_mut()
            .find(|(c, r)| r.is_none() && c.id() == id)
        {
            slot.1 = Some(cost);
        }
        if !self.awaiting.is_empty() && self.awaiting.iter().all(|(_, r)| r.is_some()) {
            self.resolve_round();
        }
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.history
            .best()
            .map(|r| (r.config.clone(), self.objective.from_cost(r.cost)))
    }

    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn objective(&self) -> Objective {
        self.objective
    }

    fn n_observations(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ConfigSpace {
        ConfigSpace::builder()
            .float("x", 0.0, 1.0)
            .int("i", 0, 100)
            .build()
    }

    fn solver() -> TournamentSolver {
        TournamentSolver::new(space(), Objective::Minimize, TournamentParams::default())
    }

    /// Drives ask/tell with cost = x and returns every suggestion.
    fn drive(s: &mut TournamentSolver, iters: usize, seed: u64) -> Vec<Suggestion> {
        let mut rng = Rng::seed_from(seed);
        let mut out = Vec::new();
        for _ in 0..iters {
            let sug = s.ask(&mut rng);
            let x = sug.config.get(0).as_float();
            s.tell(&sug.config, x, sug.budget);
            out.push(sug);
        }
        out
    }

    #[test]
    fn brackets_complete_and_champion_improves_or_holds() {
        let mut s = solver();
        drive(&mut s, 64, 3);
        assert!(s.generations_played() >= 4, "brackets did not complete");
        assert!(s.champion().is_some());
        let (_, best) = s.best().unwrap();
        assert!(best.is_finite());
    }

    #[test]
    fn bracket_is_pure_function_of_seed() {
        let mut a = solver();
        let mut b = solver();
        let sa = drive(&mut a, 48, 7);
        let sb = drive(&mut b, 48, 7);
        assert_eq!(sa, sb, "same-seed runs diverged");
        let mut c = solver();
        let sc = drive(&mut c, 48, 8);
        assert_ne!(sa, sc, "different seeds produced identical brackets");
    }

    #[test]
    fn champion_seeds_next_generation() {
        let mut s = solver();
        let mut rng = Rng::seed_from(5);
        // Play exactly one full bracket (8 -> 4 -> 2 -> 1 = 14 plays).
        for _ in 0..14 {
            let sug = s.ask(&mut rng);
            let x = sug.config.get(0).as_float();
            s.tell(&sug.config, x, sug.budget);
        }
        let champ = s.champion().expect("bracket finished").clone();
        // The champion re-enters the next bracket.
        let mut seen = Vec::new();
        for _ in 0..8 {
            let sug = s.ask(&mut rng);
            seen.push(sug.config.clone());
            let x = sug.config.get(0).as_float();
            s.tell(&sug.config, x, sug.budget);
        }
        assert!(
            seen.iter().any(|c| c.id() == champ.id()),
            "champion missing from next generation"
        );
    }

    #[test]
    fn nan_cost_loses_matches_deterministically() {
        let mut s = solver();
        let mut rng = Rng::seed_from(11);
        let mut nan_ids = std::collections::HashSet::new();
        for i in 0..56 {
            let sug = s.ask(&mut rng);
            if i % 2 == 0 {
                nan_ids.insert(sug.config.id());
                s.tell(&sug.config, f64::NAN, sug.budget);
            } else {
                s.tell(&sug.config, sug.config.get(0).as_float(), sug.budget);
            }
        }
        let (best, value) = s.best().expect("finite observations exist");
        assert!(value.is_finite());
        assert!(!nan_ids.contains(&best.id()), "a NaN config won best()");
    }

    #[test]
    fn tolerates_ask_without_tell() {
        let mut s = solver();
        let mut rng = Rng::seed_from(13);
        // Ask twice as many times as we tell; solver must not stall.
        let mut pending = Vec::new();
        for i in 0..40 {
            let sug = s.ask(&mut rng);
            if i % 2 == 0 {
                pending.push(sug);
            } else {
                s.tell(&sug.config, sug.config.get(0).as_float(), sug.budget);
            }
        }
        for sug in pending {
            s.tell(&sug.config, sug.config.get(0).as_float(), sug.budget);
        }
        assert!(s.best().is_some());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_bracket_panics() {
        TournamentSolver::new(
            space(),
            Objective::Minimize,
            TournamentParams {
                bracket_size: 6,
                ..TournamentParams::default()
            },
        );
    }
}
