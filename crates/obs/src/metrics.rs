//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms, rendered in Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones
//! over shared atomics: registration takes a lock once, but the hot
//! path — `inc`/`set`/`observe` — is a relaxed atomic op, so
//! instrumented code never contends with the scraper. Values are
//! `u64` (ticks, nanoseconds, depths, counts); observability never
//! handles result floats, which keeps it trivially outside the
//! determinism contract.
//!
//! Histogram p50/p99 are derived from the bucket counts at render
//! time; the interpolation between the two straddling bucket
//! representatives delegates to `tuna_stats::summary::quantile_of_sorted`
//! so the rank convention matches every other quantile in the
//! workspace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tuna_stats::json::fmt_f64;
use tuna_stats::summary::quantile_of_sorted;

/// A monotone counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A detached counter (not registered anywhere) — useful in tests.
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A detached gauge (not registered anywhere) — useful in tests.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Store an absolute value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise to at least `v` (high-water marks).
    pub fn set_at_least(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// `bounds` are inclusive upper bucket edges; one implicit overflow
/// bucket catches everything above the last edge. Quantiles are
/// bucket-resolution approximations: a quantile that lands in the
/// overflow bucket saturates at the last finite edge.
#[derive(Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Arc<Vec<AtomicU64>>,
    sum: Arc<AtomicU64>,
}

impl Histogram {
    /// A detached histogram with the given inclusive upper edges
    /// (must be non-empty and strictly increasing).
    pub fn detached(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: Arc::new(bounds.to_vec()),
            buckets: Arc::new(buckets),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured inclusive upper edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Bucket-resolution quantile (`q` in `[0, 1]`); `None` when empty.
    ///
    /// Rank position follows the workspace convention
    /// (`pos = q * (n - 1)`, linear interpolation between the two
    /// straddling order statistics — delegated to
    /// `tuna_stats::summary::quantile_of_sorted` on the two bucket
    /// representatives).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let pos = q * (total - 1) as f64;
        let lo = pos.floor() as u64;
        let hi = pos.ceil() as u64;
        let lo_val = self.value_at_rank(&counts, lo);
        let hi_val = self.value_at_rank(&counts, hi);
        Some(quantile_of_sorted(&[lo_val, hi_val], pos - lo as f64))
    }

    /// The representative value (bucket upper edge, saturating at the
    /// last finite edge for the overflow bucket) of the observation at
    /// sorted rank `r`.
    fn value_at_rank(&self, counts: &[u64], r: u64) -> f64 {
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += c;
            if cum > r {
                let edge = i.min(self.bounds.len() - 1);
                return self.bounds[edge] as f64;
            }
        }
        self.bounds[self.bounds.len() - 1] as f64
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A named collection of metrics, rendered in Prometheus text format.
///
/// Names may carry a label set in braces (`tuna_shed_total{code="429"}`);
/// entries sharing the family name (the part before `{`) are grouped
/// under one `# HELP`/`# TYPE` header. Histogram names must be
/// label-free (their rendering owns the `le` label).
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let mut entries = self.entries.lock().expect("metrics lock");
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Counter::detached()),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let mut entries = self.entries.lock().expect("metrics lock");
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Gauge::detached()),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name` with the given inclusive
    /// upper bucket edges. Re-registration ignores `bounds` and
    /// returns the existing histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` carries labels or is registered as a
    /// different kind.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        assert!(
            !name.contains('{'),
            "histogram `{name}` must be label-free (rendering owns `le`)"
        );
        let mut entries = self.entries.lock().expect("metrics lock");
        let entry = entries.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Histogram::detached(bounds)),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Render in Prometheus text exposition format (sorted by name).
    pub fn render(&self) -> String {
        MetricsRegistry::render_many(&[self])
    }

    /// Render several registries as one exposition document. Names are
    /// merged sorted; on a duplicate name the earliest registry wins.
    pub fn render_many(regs: &[&MetricsRegistry]) -> String {
        let mut out = String::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        let guards: Vec<_> = regs
            .iter()
            .map(|r| r.entries.lock().expect("metrics lock"))
            .collect();
        let mut names: Vec<(&str, usize)> = Vec::new();
        for (ri, guard) in guards.iter().enumerate() {
            for name in guard.keys() {
                if seen.insert(name.clone(), ()).is_none() {
                    names.push((name, ri));
                }
            }
        }
        names.sort();
        let mut last_family = String::new();
        for (name, ri) in names {
            let entry = &guards[ri][name];
            let family = name.split('{').next().unwrap_or(name);
            if family != last_family {
                out.push_str(&format!("# HELP {family} {}\n", entry.help));
                out.push_str(&format!("# TYPE {family} {}\n", entry.metric.kind()));
                last_family = family.to_string();
            }
            match &entry.metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => render_histogram(&mut out, name, h),
            }
        }
        out
    }
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        let le = match h.bounds().get(i) {
            Some(b) => b.to_string(),
            None => "+Inf".to_string(),
        };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", h.sum()));
    out.push_str(&format!("{name}_count {cum}\n"));
    for (q, suffix) in [(0.5, "p50"), (0.99, "p99")] {
        if let Some(v) = h.quantile(q) {
            out.push_str(&format!(
                "# HELP {name}_{suffix} bucket-interpolated quantile of {name}\n\
                 # TYPE {name}_{suffix} gauge\n\
                 {name}_{suffix} {}\n",
                fmt_f64(v)
            ));
        }
    }
}

/// The process-global registry: instrumentation points that have no
/// natural owner (the executor, the tuning pipeline, store repair)
/// register here; `GET /metrics` merges it with the manager's own
/// registry.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("tuna_test_total", "a test counter");
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Re-registration returns the same underlying atomic.
        assert_eq!(reg.counter("tuna_test_total", "ignored").get(), 3);
        let g = reg.gauge("tuna_test_depth", "a test gauge");
        g.set(7);
        g.set_at_least(5);
        assert_eq!(g.get(), 7);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("tuna_x", "");
        reg.gauge("tuna_x", "");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::detached(&[1, 2, 4, 8]);
        for v in [0, 1, 1, 2, 3, 5, 9, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 121);
        // buckets: le=1 -> {0,1,1}, le=2 -> {2}, le=4 -> {3}, le=8 -> {5},
        // +Inf -> {9,100}
        assert_eq!(h.bucket_counts(), vec![3, 1, 1, 1, 2]);
        // p50: pos = 3.5 between ranks 3 (le=2) and 4 (le=4) -> 3.0
        assert_eq!(h.quantile(0.5), Some(3.0));
        // p99 lands in the overflow bucket -> saturates at the last edge.
        assert_eq!(h.quantile(0.99), Some(8.0));
        assert_eq!(Histogram::detached(&[1]).quantile(0.5), None);
    }

    #[test]
    fn prometheus_rendering() {
        let reg = MetricsRegistry::new();
        reg.counter("tuna_shed_total{code=\"429\"}", "sheds by class")
            .add(4);
        reg.counter("tuna_shed_total{code=\"503\"}", "sheds by class")
            .inc();
        reg.gauge("tuna_depth", "queue depth").set(2);
        let h = reg.histogram("tuna_latency_ticks", "dispatch latency", &[1, 4]);
        h.observe(1);
        h.observe(3);
        let text = reg.render();
        // One header per family, label'd series grouped beneath it.
        assert_eq!(text.matches("# TYPE tuna_shed_total counter").count(), 1);
        assert!(text.contains("tuna_shed_total{code=\"429\"} 4\n"));
        assert!(text.contains("tuna_shed_total{code=\"503\"} 1\n"));
        assert!(text.contains("# TYPE tuna_depth gauge\ntuna_depth 2\n"));
        assert!(text.contains("tuna_latency_ticks_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("tuna_latency_ticks_bucket{le=\"4\"} 2\n"));
        assert!(text.contains("tuna_latency_ticks_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("tuna_latency_ticks_sum 4\n"));
        assert!(text.contains("tuna_latency_ticks_count 2\n"));
        assert!(text.contains("tuna_latency_ticks_p50"));
        assert!(text.contains("tuna_latency_ticks_p99"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }

    #[test]
    fn render_many_merges_first_wins() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("tuna_a", "from a").inc();
        b.counter("tuna_b", "from b").add(2);
        b.counter("tuna_a", "shadowed").add(99);
        let text = MetricsRegistry::render_many(&[&a, &b]);
        assert!(text.contains("tuna_a 1\n"));
        assert!(text.contains("tuna_b 2\n"));
        assert!(!text.contains("99"));
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("tuna_obs_test_global_total", "test only");
        let before = c.get();
        global()
            .counter("tuna_obs_test_global_total", "test only")
            .inc();
        assert_eq!(c.get(), before + 1);
    }
}
