//! The wall-clock implementation of [`Clock`] — the **only** file in
//! `crates/obs` where reading real time is legal.
//!
//! The determinism contract (docs/ARCHITECTURE.md) bans `Instant::now`
//! on every result-bearing path; the `wall-clock` lint enforces the ban
//! tree-wide with a short allowlist, and this file is the sole obs
//! entry on it. Everything else in the crate takes time through the
//! [`Clock`] seam, so the choice of clock is made exactly once, at the
//! composition root: `tunad` hands its journal a [`WallClock`], the
//! simulator hands its journal a [`crate::TickClock`], and no other
//! code can tell the difference.

use std::time::Instant;

use crate::clock::Clock;

/// Real elapsed time, in nanoseconds since the clock was created.
///
/// Readings are relative (a span *duration* is meaningful, an absolute
/// value is not), which keeps rendered journals free of wall-time
/// epochs that would differ run-to-run even on identical hardware.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
