//! The per-study convergence trace: best-cost-so-far series per arm,
//! per cell — the answer to "is this study converging, and how fast?".
//!
//! # Why a sidecar journal, not the row store
//!
//! The row store persists per-configuration *measurements*; the
//! convergence series lives in the tuning pipeline's iteration trace,
//! which is only materialized while a cell executes. To serve
//! `GET /v1/studies/<name>/trace` after a restart without re-running
//! anything, the manager appends one line per completed cell to a
//! `<study>.trace` sidecar **before** recording the cell in the row
//! store. A crash between the two re-executes the cell (cells are pure
//! functions of the declaration), and the dedup-by-cell load drops the
//! duplicate — so the assembled document is byte-identical across
//! kill/restart and across `TUNA_WORKERS`, even though the sidecar's
//! own line *order* may differ.
//!
//! # Sidecar format
//!
//! One JSON object per `\n`-terminated line (the same torn-tail
//! discipline as the result journal): an unterminated or malformed
//! tail is dropped on load and the file rewritten. All JSON goes
//! through `tuna_stats::json`, the workspace's single JSON surface.

use tuna_stats::json::{self, fmt_f64, quote, Value};

/// One arm's convergence series inside a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmTrace {
    /// Arm label, e.g. `TUNA` or `naive`.
    pub label: String,
    /// `(round, best_cost_so_far)` per tuning round that reported a
    /// best value.
    pub series: Vec<(u64, f64)>,
}

/// The convergence trace of one completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTrace {
    /// Cell index within the campaign.
    pub cell: u64,
    /// Workload label at these coordinates.
    pub workload: String,
    /// Arm label at these coordinates.
    pub arm: String,
    /// Run (seed repeat) index at these coordinates.
    pub run: u64,
    /// One entry per tuner that ran in the cell (two for paired
    /// TUNA-vs-naive cells, one otherwise; empty when the arm does not
    /// tune, e.g. a static default-configuration arm).
    pub arms: Vec<ArmTrace>,
}

/// The assembled per-study document served by the trace endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyTrace {
    /// Study name.
    pub study: String,
    /// The campaign digest (pins the declaration the trace belongs to).
    pub digest: String,
    /// Total cells in the campaign (traced or not).
    pub n_cells: u64,
    /// Traced cells, sorted by cell index.
    pub cells: Vec<CellTrace>,
}

impl ArmTrace {
    fn render(&self) -> String {
        let points: Vec<String> = self
            .series
            .iter()
            .map(|(r, v)| format!("[{r},{}]", fmt_f64(*v)))
            .collect();
        format!(
            "{{\"label\":{},\"series\":[{}]}}",
            quote(&self.label),
            points.join(",")
        )
    }

    fn parse(v: &Value) -> Result<ArmTrace, String> {
        let label = v
            .get("label")
            .and_then(Value::as_str)
            .ok_or("arm missing 'label'")?
            .to_string();
        let mut series = Vec::new();
        for point in v
            .get("series")
            .and_then(Value::as_arr)
            .ok_or("arm missing 'series'")?
        {
            let pair = point.as_arr().ok_or("series point is not a pair")?;
            if pair.len() != 2 {
                return Err("series point is not a pair".into());
            }
            let round = pair[0].as_f64().ok_or("series round is not a number")? as u64;
            // A quarantined non-finite best renders as null; keep the
            // round with a NaN marker so the series length survives.
            let best = pair[1].as_f64().unwrap_or(f64::NAN);
            series.push((round, best));
        }
        Ok(ArmTrace { label, series })
    }
}

impl CellTrace {
    /// Render as one canonical sidecar line (no trailing newline).
    pub fn render_line(&self) -> String {
        let arms: Vec<String> = self.arms.iter().map(ArmTrace::render).collect();
        format!(
            "{{\"cell\":{},\"workload\":{},\"arm\":{},\"run\":{},\"arms\":[{}]}}",
            self.cell,
            quote(&self.workload),
            quote(&self.arm),
            self.run,
            arms.join(",")
        )
    }

    /// Parse one sidecar line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing field — the
    /// caller treats that as a torn tail, never a panic.
    pub fn parse_line(line: &str) -> Result<CellTrace, String> {
        let v = json::parse(line)?;
        let cell = v
            .get("cell")
            .and_then(Value::as_f64)
            .ok_or("line missing 'cell'")? as u64;
        let workload = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("line missing 'workload'")?
            .to_string();
        let arm = v
            .get("arm")
            .and_then(Value::as_str)
            .ok_or("line missing 'arm'")?
            .to_string();
        let run = v
            .get("run")
            .and_then(Value::as_f64)
            .ok_or("line missing 'run'")? as u64;
        let mut arms = Vec::new();
        for a in v
            .get("arms")
            .and_then(Value::as_arr)
            .ok_or("line missing 'arms'")?
        {
            arms.push(ArmTrace::parse(a)?);
        }
        Ok(CellTrace {
            cell,
            workload,
            arm,
            run,
            arms,
        })
    }
}

/// Result of loading a sidecar: the surviving cells (deduped,
/// first-wins, sorted by cell) and whether the file needs rewriting
/// (torn tail, malformed line, or duplicate dropped).
#[derive(Debug)]
pub struct SidecarLoad {
    /// Surviving cell traces, sorted by cell index.
    pub cells: Vec<CellTrace>,
    /// The on-disk bytes are not the canonical rendering of `cells`;
    /// the owner should rewrite the file.
    pub dirty: bool,
}

/// Load sidecar text with the journal's torn-tail discipline: an
/// unterminated final line is dropped, a malformed line and everything
/// after it is dropped, and duplicate cells (a crash between the
/// sidecar append and the row-store record) keep the first occurrence.
pub fn load_sidecar(text: &str) -> SidecarLoad {
    let mut cells: Vec<CellTrace> = Vec::new();
    let mut dirty = !text.is_empty() && !text.ends_with('\n');
    let mut rest = text;
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        if line.trim().is_empty() {
            dirty = true;
            continue;
        }
        match CellTrace::parse_line(line) {
            Ok(cell) => {
                if cells.iter().any(|c| c.cell == cell.cell) {
                    dirty = true;
                } else {
                    cells.push(cell);
                }
            }
            Err(_) => {
                // Torn mid-file write: nothing after it is trustworthy.
                dirty = true;
                break;
            }
        }
    }
    cells.sort_by_key(|c| c.cell);
    SidecarLoad { cells, dirty }
}

/// Canonical sidecar text for a set of cells (used for repair
/// rewrites; cells should already be sorted).
pub fn render_sidecar(cells: &[CellTrace]) -> String {
    let mut out = String::new();
    for c in cells {
        out.push_str(&c.render_line());
        out.push('\n');
    }
    out
}

impl StudyTrace {
    /// Render the wire document served by
    /// `GET /v1/studies/<name>/trace`. Cells are sorted by index and
    /// no clock values appear, so the document is byte-identical
    /// across worker counts and restarts.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(CellTrace::render_line).collect();
        format!(
            "{{\"study\":{},\"digest\":{},\"n_cells\":{},\"cells\":[{}]}}\n",
            quote(&self.study),
            quote(&self.digest),
            self.n_cells,
            cells.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(idx: u64) -> CellTrace {
        CellTrace {
            cell: idx,
            workload: "tpcc".into(),
            arm: "TUNA".into(),
            run: idx % 2,
            arms: vec![ArmTrace {
                label: "TUNA".into(),
                series: vec![(0, 2.5), (1, 1.25), (2, 1.25)],
            }],
        }
    }

    #[test]
    fn line_roundtrip() {
        let c = cell(3);
        let line = c.render_line();
        assert!(!line.contains('\n'));
        assert_eq!(CellTrace::parse_line(&line).unwrap(), c);
    }

    #[test]
    fn nan_best_survives_as_null() {
        let c = CellTrace {
            arms: vec![ArmTrace {
                label: "TUNA".into(),
                series: vec![(0, f64::NAN)],
            }],
            ..cell(0)
        };
        let line = c.render_line();
        assert!(line.contains("[0,null]"));
        let parsed = CellTrace::parse_line(&line).unwrap();
        assert!(parsed.arms[0].series[0].1.is_nan());
    }

    #[test]
    fn sidecar_load_is_torn_tail_tolerant() {
        let clean = render_sidecar(&[cell(0), cell(1)]);
        let load = load_sidecar(&clean);
        assert_eq!(load.cells.len(), 2);
        assert!(!load.dirty);

        // Unterminated tail: dropped, marked dirty.
        let torn = format!("{clean}{}", &cell(2).render_line()[..10]);
        let load = load_sidecar(&torn);
        assert_eq!(load.cells.len(), 2);
        assert!(load.dirty);

        // Malformed mid-file line: it and everything after is dropped.
        let garbled = format!("not json\n{clean}");
        let load = load_sidecar(&garbled);
        assert!(load.cells.is_empty());
        assert!(load.dirty);
    }

    #[test]
    fn sidecar_load_dedups_first_wins_and_sorts() {
        let mut dup = cell(1);
        dup.workload = "shadowed".into();
        let text = render_sidecar(&[cell(1), cell(0), dup]);
        let load = load_sidecar(&text);
        assert_eq!(load.cells.len(), 2);
        assert_eq!(load.cells[0].cell, 0);
        assert_eq!(load.cells[1].cell, 1);
        assert_eq!(load.cells[1].workload, "tpcc");
        assert!(load.dirty, "duplicate drop must request a rewrite");
    }

    #[test]
    fn study_document_is_canonical() {
        let doc = StudyTrace {
            study: "alpha".into(),
            digest: "deadbeef".into(),
            n_cells: 4,
            cells: vec![cell(0), cell(1)],
        };
        let text = doc.to_json();
        assert!(text.ends_with('\n'));
        let v = json::parse(text.trim_end()).unwrap();
        assert_eq!(v.get("study").and_then(Value::as_str), Some("alpha"));
        assert_eq!(v.get("n_cells").and_then(Value::as_f64), Some(4.0));
        assert_eq!(v.get("cells").and_then(Value::as_arr).unwrap().len(), 2);
    }
}
