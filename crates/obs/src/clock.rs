//! The clock seam: every telemetry timestamp is a `u64` read through
//! [`Clock`], so the *source* of time is a property of the call site,
//! not of the instrumentation.
//!
//! Two implementations exist. [`TickClock`] (here) is the deterministic
//! one: it only moves when the surrounding state machine advances it,
//! so under it a journal is a pure function of the event sequence.
//! [`crate::wall::WallClock`] is the real-time one, legal only where
//! the `wall-clock` lint allows it (the daemon and its client).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotone source of `u64` timestamps. The unit is the caller's
/// business (ticks for the simulator, nanoseconds for the daemon);
/// consumers must treat readings as opaque ordinals.
pub trait Clock: Send + Sync {
    /// The current reading. Must be monotone non-decreasing.
    fn now(&self) -> u64;
}

/// A deterministic clock: reads whatever the owner last stored.
///
/// The simulator and the study manager advance it explicitly (one tick
/// per scheduling decision / simulated round), which makes every
/// timestamp recorded against it reproducible bit-for-bit across
/// worker counts and restarts.
#[derive(Debug, Default)]
pub struct TickClock {
    ticks: AtomicU64,
}

impl TickClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared clock at tick 0, ready to hand to a [`crate::Journal`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Advance by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed);
    }

    /// Jump to an absolute reading (used when resuming a persisted
    /// logical clock). Never moves backwards.
    pub fn set_at_least(&self, t: u64) {
        self.ticks.fetch_max(t, Ordering::Relaxed);
    }
}

impl Clock for TickClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_is_explicit() {
        let c = TickClock::new();
        assert_eq!(c.now(), 0);
        c.advance(3);
        assert_eq!(c.now(), 3);
        c.set_at_least(2); // never backwards
        assert_eq!(c.now(), 3);
        c.set_at_least(10);
        assert_eq!(c.now(), 10);
    }

    #[test]
    fn tick_clock_is_object_safe() {
        let c: Arc<dyn Clock> = TickClock::shared();
        assert_eq!(c.now(), 0);
    }
}
