//! Deterministic observability for the TUNA stack.
//!
//! TUNA's premise is that cloud performance signals are noisy and must
//! be *explained*; this crate makes the fleet itself explainable
//! without ever perturbing the results it observes. Three layers:
//!
//! - [`clock`] / [`wall`]: the **two-clock rule**. Every telemetry
//!   timestamp flows through the [`clock::Clock`] seam. Deterministic
//!   paths (the simulator, campaign execution, the serve state machine)
//!   use [`clock::TickClock`], whose readings are a pure function of
//!   the event sequence — so journals are byte-identical across
//!   `TUNA_WORKERS` and kill/restart. Only the daemon's readiness loop
//!   may use [`wall::WallClock`]; `crates/obs/src/wall.rs` is the one
//!   file in this crate on the `wall-clock` lint allowlist
//!   (see `docs/LINTS.md`).
//! - [`journal`]: hierarchical study → cell → trial-round **spans**
//!   plus discrete **events** (scheduled, shed{408,429,503},
//!   quarantined-NaN, journal-repaired, preempted, admission-refused),
//!   bounded in memory, rendered deterministically.
//! - [`metrics`]: a registry of named counters, gauges and fixed-bucket
//!   histograms over atomics — hot paths never take a lock to record —
//!   rendered in Prometheus text exposition format with p50/p99
//!   derived from the bucket counts.
//! - [`trace`]: the per-study convergence trace (best-cost-so-far
//!   series per arm, per cell), with a torn-tail-tolerant line-oriented
//!   sidecar format so a killed daemon resumes with an identical trace.
//!
//! # The observer effect, pinned
//!
//! Instrumentation must not change what it measures. Every hook in the
//! workspace is an atomic side channel: metrics and journal writes
//! never feed scheduling decisions, response bytes, or results. The
//! perf gate's `obs/overhead` scenario enforces the cost (< 3% on the
//! `serve/c10k` path) and every pre-existing scenario checksum pins
//! that behaviour is bit-unchanged.

pub mod clock;
pub mod journal;
pub mod metrics;
pub mod trace;
pub mod wall;

pub use clock::{Clock, TickClock};
pub use journal::{Event, EventKind, Journal, Span, SpanId};
pub use metrics::{global, Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{ArmTrace, CellTrace, StudyTrace};
pub use wall::WallClock;
