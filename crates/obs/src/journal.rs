//! The span/event journal: *why* the fleet did what it did.
//!
//! Spans are hierarchical — study → cell → trial-round — and events
//! are discrete facts attached to a span (or to the journal root).
//! Both are stamped through the [`Clock`] seam, so a journal driven by
//! a [`crate::TickClock`] renders byte-identically across worker
//! counts and restarts, while `tunad`'s journal carries real
//! durations.
//!
//! The journal is bounded: past capacity it stops *storing* spans and
//! events but keeps *counting* them (per-kind totals and a dropped
//! counter), so a long-lived daemon cannot leak memory through its own
//! telemetry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;

/// Discrete event vocabulary. The slugs (see [`EventKind::label`]) are
/// the wire/metric names; `docs/OBSERVABILITY.md` is the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A cell was handed to a worker by the fair-share scheduler.
    Scheduled,
    /// A cell completed and its record was journaled.
    Completed,
    /// A connection was shed with `408 Request Timeout`.
    Shed408,
    /// A request was shed with `429 Too Many Requests`.
    Shed429,
    /// A connection was refused with `503 Service Unavailable`.
    Shed503,
    /// A non-finite cost was quarantined before reaching a model fit.
    QuarantinedNan,
    /// A torn result journal was repaired on open.
    JournalRepaired,
    /// A batch-lane study was held back in favour of interactive work.
    Preempted,
    /// A submit was refused by admission control (budget or auth).
    AdmissionRefused,
}

impl EventKind {
    /// Every kind, in rendering order.
    pub const ALL: [EventKind; 9] = [
        EventKind::Scheduled,
        EventKind::Completed,
        EventKind::Shed408,
        EventKind::Shed429,
        EventKind::Shed503,
        EventKind::QuarantinedNan,
        EventKind::JournalRepaired,
        EventKind::Preempted,
        EventKind::AdmissionRefused,
    ];

    /// The stable slug used in rendered journals and metric names.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Scheduled => "scheduled",
            EventKind::Completed => "completed",
            EventKind::Shed408 => "shed-408",
            EventKind::Shed429 => "shed-429",
            EventKind::Shed503 => "shed-503",
            EventKind::QuarantinedNan => "quarantined-nan",
            EventKind::JournalRepaired => "journal-repaired",
            EventKind::Preempted => "preempted",
            EventKind::AdmissionRefused => "admission-refused",
        }
    }

    fn index(self) -> usize {
        EventKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }
}

/// Opaque handle to a span in one journal. Handles from different
/// journals must not be mixed (they are plain indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(usize);

impl SpanId {
    /// The sentinel returned when the journal is full; children of a
    /// dropped span are attached to the root instead.
    const DROPPED: SpanId = SpanId(usize::MAX);

    /// The raw index (rendering only).
    pub fn index(self) -> usize {
        self.0
    }
}

/// One interval of work. `end == None` while still open.
#[derive(Debug, Clone)]
pub struct Span {
    /// Display name, e.g. `study:default/alpha` or `cell:3`.
    pub name: String,
    /// Parent span, if any.
    pub parent: Option<SpanId>,
    /// Clock reading when the span opened.
    pub start: u64,
    /// Clock reading when the span closed.
    pub end: Option<u64>,
}

/// One discrete fact, attached to a span or to the journal root.
#[derive(Debug, Clone)]
pub struct Event {
    /// Clock reading when the event was recorded.
    pub at: u64,
    /// The span it happened in, if any.
    pub span: Option<SpanId>,
    /// What happened.
    pub kind: EventKind,
    /// Free-form detail, e.g. `cell=3` or `reason=study-budget`.
    pub detail: String,
}

struct State {
    spans: Vec<Span>,
    events: Vec<Event>,
}

/// A bounded, thread-safe span/event journal.
pub struct Journal {
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
    capacity: usize,
    counts: [AtomicU64; EventKind::ALL.len()],
    dropped: AtomicU64,
}

/// Default bound on stored spans and on stored events (each).
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

impl Journal {
    /// A journal with the default capacity.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_capacity(clock, DEFAULT_CAPACITY)
    }

    /// A journal storing at most `capacity` spans and `capacity`
    /// events; per-kind counts keep running past the bound.
    pub fn with_capacity(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        Self {
            clock,
            state: Mutex::new(State {
                spans: Vec::new(),
                events: Vec::new(),
            }),
            capacity,
            counts: Default::default(),
            dropped: AtomicU64::new(0),
        }
    }

    /// Open a span now. Returns a sentinel (and counts a drop) when the
    /// journal is full.
    pub fn begin_span(&self, parent: Option<SpanId>, name: &str) -> SpanId {
        let start = self.clock.now();
        self.push_span(Span {
            name: name.to_string(),
            parent,
            start,
            end: None,
        })
    }

    /// Close an open span now. Closing a sentinel or already-closed
    /// span is a no-op.
    pub fn end_span(&self, id: SpanId) {
        let now = self.clock.now();
        let mut state = self.state.lock().expect("journal lock");
        if let Some(span) = state.spans.get_mut(id.0) {
            if span.end.is_none() {
                span.end = Some(now);
            }
        }
    }

    /// Retro-record a closed span with explicit bounds (used for
    /// trial-round spans reconstructed from a completed cell's trace).
    pub fn span_at(&self, parent: Option<SpanId>, name: &str, start: u64, end: u64) -> SpanId {
        self.push_span(Span {
            name: name.to_string(),
            parent,
            start,
            end: Some(end),
        })
    }

    fn push_span(&self, span: Span) -> SpanId {
        let mut state = self.state.lock().expect("journal lock");
        if state.spans.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return SpanId::DROPPED;
        }
        state.spans.push(span);
        SpanId(state.spans.len() - 1)
    }

    /// Record an event now. The per-kind count always advances, even
    /// when the stored event is dropped for capacity.
    pub fn event(&self, span: Option<SpanId>, kind: EventKind, detail: &str) {
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        let at = self.clock.now();
        let span = span.filter(|s| *s != SpanId::DROPPED);
        let mut state = self.state.lock().expect("journal lock");
        if state.events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.events.push(Event {
            at,
            span,
            kind,
            detail: detail.to_string(),
        });
    }

    /// Total times `kind` was recorded (including dropped events).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()].load(Ordering::Relaxed)
    }

    /// Spans and events dropped for capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The clock this journal stamps with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Snapshot of stored spans (rendering/tests).
    pub fn spans(&self) -> Vec<Span> {
        self.state.lock().expect("journal lock").spans.clone()
    }

    /// Snapshot of stored events (rendering/tests).
    pub fn events(&self) -> Vec<Event> {
        self.state.lock().expect("journal lock").events.clone()
    }

    /// Deterministic plain-text rendering: one line per span in open
    /// order, then one line per event in record order. Under a
    /// [`crate::TickClock`] this is byte-identical for identical event
    /// sequences.
    pub fn render(&self) -> String {
        let state = self.state.lock().expect("journal lock");
        let mut out = String::new();
        for (i, s) in state.spans.iter().enumerate() {
            let parent = match s.parent {
                Some(p) => p.0.to_string(),
                None => "-".to_string(),
            };
            let end = match s.end {
                Some(e) => e.to_string(),
                None => "open".to_string(),
            };
            out.push_str(&format!(
                "span {i} {} parent={parent} [{}..{end}]\n",
                s.name, s.start
            ));
        }
        for e in &state.events {
            let span = match e.span {
                Some(s) => s.0.to_string(),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "event @{} {} span={span} {}\n",
                e.at,
                e.kind.label(),
                e.detail
            ));
        }
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n > 0 {
                out.push_str(&format!("count {} {n}\n", kind.label()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;

    fn tick_journal() -> (Arc<TickClock>, Journal) {
        let clock = TickClock::shared();
        let journal = Journal::new(Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, journal)
    }

    #[test]
    fn spans_nest_and_close() {
        let (clock, j) = tick_journal();
        let study = j.begin_span(None, "study:default/alpha");
        clock.advance(1);
        let cell = j.begin_span(Some(study), "cell:0");
        clock.advance(2);
        j.end_span(cell);
        j.end_span(study);
        let spans = j.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, 0);
        assert_eq!(spans[0].end, Some(3));
        assert_eq!(spans[1].parent, Some(study));
        assert_eq!(spans[1].start, 1);
        assert_eq!(spans[1].end, Some(3));
    }

    #[test]
    fn events_count_even_past_capacity() {
        let clock = TickClock::shared();
        let j = Journal::with_capacity(clock as Arc<dyn Clock>, 2);
        for _ in 0..5 {
            j.event(None, EventKind::Shed429, "reason=pipeline-depth");
        }
        assert_eq!(j.count(EventKind::Shed429), 5);
        assert_eq!(j.events().len(), 2);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn render_is_deterministic_for_identical_sequences() {
        let run = || {
            let (clock, j) = tick_journal();
            let s = j.begin_span(None, "study:default/a");
            clock.advance(1);
            j.event(Some(s), EventKind::Scheduled, "cell=0");
            clock.advance(1);
            j.event(Some(s), EventKind::Completed, "cell=0");
            j.end_span(s);
            j.render()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.contains("event @1 scheduled span=0 cell=0"));
        assert!(a.contains("count completed 1"));
    }

    #[test]
    fn full_journal_returns_sentinel_span() {
        let clock = TickClock::shared();
        let j = Journal::with_capacity(clock as Arc<dyn Clock>, 1);
        let a = j.begin_span(None, "a");
        let b = j.begin_span(None, "b");
        assert_ne!(a, SpanId::DROPPED);
        assert_eq!(b, SpanId::DROPPED);
        j.end_span(b); // no-op, must not panic
                       // Events against a dropped span attach to the root.
        j.event(Some(b), EventKind::Preempted, "");
        assert_eq!(j.events()[0].span, None);
    }
}
