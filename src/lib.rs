//! Workspace facade for the TUNA reproduction.
//!
//! The implementation lives in the `crates/` workspace members; this
//! crate re-exports them under one roof so downstream users can depend
//! on `tuna` alone, and owns the cross-crate test pyramid (`tests/`)
//! and runnable examples (`examples/`).
//!
//! Crate dependency graph (leaf first):
//!
//! ```text
//! stats ─┬─ space ──┬─ optimizer ─┐
//!        ├─ ml ─────┘             │
//!        └─ cloudsim ─┬─ workloads├─ core ─┬─ bench
//!                     ├─ metrics ─┤        └─ serve
//!                     └─ sut ─────┘
//! ```

pub use tuna_cloudsim as cloudsim;
pub use tuna_core as core;
pub use tuna_metrics as metrics;
pub use tuna_ml as ml;
pub use tuna_optimizer as optimizer;
pub use tuna_serve as serve;
pub use tuna_space as space;
pub use tuna_stats as stats;
pub use tuna_sut as sut;
pub use tuna_workloads as workloads;
